(* Tests for Dgraph.Graph and Dgraph.Gen. *)

module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_create_dedup () =
  let g = G.create 4 [ (0, 1); (1, 0); (2, 3); (0, 1) ] in
  checki "n" 4 (G.n g);
  checki "m dedups" 2 (G.m g);
  checkb "edge" true (G.mem_edge g 0 1);
  checkb "reverse" true (G.mem_edge g 1 0);
  checkb "absent" false (G.mem_edge g 0 2)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.normalize_edge: self-loop")
    (fun () -> ignore (G.create 3 [ (1, 1) ]))

let test_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Graph.create: vertex out of range") (fun () ->
      ignore (G.create 3 [ (0, 3) ]))

let test_neighbors_sorted () =
  let g = G.create 5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (G.neighbors g 2);
  checki "degree" 4 (G.degree g 2);
  checki "max degree" 4 (G.max_degree g)

let test_edges_normalized () =
  let g = G.create 4 [ (3, 1); (2, 0) ] in
  Alcotest.(check (array (pair int int)))
    "normalized sorted" [| (0, 2); (1, 3) |] (G.edges_array g)

let test_union () =
  let a = G.create 4 [ (0, 1) ] and b = G.create 4 [ (1, 2); (0, 1) ] in
  let u = G.union a b in
  checki "union size" 2 (G.m u);
  checkb "has both" true (G.mem_edge u 0 1 && G.mem_edge u 1 2)

let test_union_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Graph.union: vertex count mismatch")
    (fun () -> ignore (G.union (G.empty 3) (G.empty 4)))

let test_relabel () =
  let g = G.create 3 [ (0, 1); (1, 2) ] in
  let g' = G.relabel g [| 2; 0; 1 |] in
  checkb "edge (2,0)" true (G.mem_edge g' 2 0);
  checkb "edge (0,1)" true (G.mem_edge g' 0 1);
  checkb "edge (1,2) gone" false (G.mem_edge g' 1 2)

let test_relabel_invalid () =
  let g = G.create 3 [ (0, 1) ] in
  Alcotest.check_raises "not permutation" (Invalid_argument "Graph.relabel: not a permutation")
    (fun () -> ignore (G.relabel g [| 0; 0; 1 |]))

let test_induced () =
  let g = G.create 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let sub, back = G.induced g [ 1; 2; 3 ] in
  checki "sub n" 3 (G.n sub);
  checki "sub m" 2 (G.m sub);
  Alcotest.(check (array int)) "back map" [| 1; 2; 3 |] back

let test_disjoint_union () =
  let a = G.create 2 [ (0, 1) ] and b = G.create 3 [ (0, 2) ] in
  let u = G.disjoint_union a b in
  checki "n" 5 (G.n u);
  checkb "first copy" true (G.mem_edge u 0 1);
  checkb "second copy shifted" true (G.mem_edge u 2 4)

let test_fold_iter_consistency () =
  let g = G.create 6 [ (0, 5); (2, 3); (1, 4) ] in
  let count = G.fold_edges (fun _ _ acc -> acc + 1) g 0 in
  checki "fold counts edges" (G.m g) count;
  let seen = ref [] in
  G.iter_edges (fun u v -> seen := (u, v) :: !seen) g;
  checki "iter counts edges" (G.m g) (List.length !seen);
  List.iter (fun (u, v) -> checkb "normalized" true (u < v)) !seen

(* Generators *)

let test_gen_path_cycle () =
  let p = Dgraph.Gen.path 5 in
  checki "path edges" 4 (G.m p);
  let c = Dgraph.Gen.cycle 5 in
  checki "cycle edges" 5 (G.m c);
  for v = 0 to 4 do
    checki "cycle degree" 2 (G.degree c v)
  done

let test_gen_complete () =
  let g = Dgraph.Gen.complete 6 in
  checki "K6 edges" 15 (G.m g);
  let kb = Dgraph.Gen.complete_bipartite 3 4 in
  checki "K34 edges" 12 (G.m kb);
  let s = Dgraph.Gen.star 5 in
  checki "star edges" 4 (G.m s);
  checki "centre degree" 4 (G.degree s 0)

let test_gen_matchings () =
  let pm = Dgraph.Gen.perfect_matching 4 in
  checki "pm edges" 4 (G.m pm);
  checki "pm n" 8 (G.n pm);
  let dm = Dgraph.Gen.disjoint_matchings ~sizes:[ 2; 3 ] in
  checki "dm n" 10 (G.n dm);
  checki "dm edges" 5 (G.m dm);
  checki "max degree 1" 1 (G.max_degree dm)

let test_gen_gnp_extremes () =
  let rng = Stdx.Prng.create 1 in
  checki "p=0 empty" 0 (G.m (Dgraph.Gen.gnp rng 10 0.));
  checki "p=1 complete" 45 (G.m (Dgraph.Gen.gnp rng 10 1.))

let test_gen_bipartite () =
  let rng = Stdx.Prng.create 2 in
  let g = Dgraph.Gen.random_bipartite rng ~left:5 ~right:7 ~p:1.0 in
  checki "complete bipartite" 35 (G.m g);
  G.iter_edges (fun u v -> checkb "crosses" true (u < 5 && v >= 5)) g

let test_gen_grid () =
  let g = Dgraph.Gen.grid 3 4 in
  checki "n" 12 (G.n g);
  (* edges: 3*3 horizontal + 2*4 vertical = 17 *)
  checki "m" 17 (G.m g);
  checki "corner degree" 2 (G.degree g 0);
  checki "interior degree" 4 (G.degree g 5);
  let _, comps = Dgraph.Components.components g in
  checki "connected" 1 comps

let test_gen_configuration_model () =
  let rng = Stdx.Prng.create 4 in
  let degrees = [| 3; 3; 2; 2; 1; 1 |] in
  let g = Dgraph.Gen.configuration_model rng ~degrees in
  checki "n" 6 (G.n g);
  (* Self-loops/multi-edges are dropped, so realised <= requested. *)
  Array.iteri (fun v d -> checkb "degree bounded" true (G.degree g v <= d)) degrees;
  Alcotest.check_raises "odd sum rejected"
    (Invalid_argument "Gen.configuration_model: odd degree sum") (fun () ->
      ignore (Dgraph.Gen.configuration_model rng ~degrees:[| 1; 1; 1 |]))

let test_gen_power_law () =
  let rng = Stdx.Prng.create 5 in
  let degrees = Dgraph.Gen.power_law_degrees rng ~n:200 ~exponent:2.5 ~dmax:20 in
  checki "length" 200 (Array.length degrees);
  checkb "even sum" true (Array.fold_left ( + ) 0 degrees mod 2 = 0);
  Array.iter (fun d -> checkb "in range" true (d >= 1 && d <= 20)) degrees;
  (* Heavy tail: degree-1 vertices should dominate degree-10+ ones. *)
  let count p = Array.fold_left (fun acc d -> if p d then acc + 1 else acc) 0 degrees in
  checkb "tail shape" true (count (fun d -> d = 1) > count (fun d -> d >= 10));
  (* And the whole pipeline builds a graph. *)
  let g = Dgraph.Gen.configuration_model rng ~degrees in
  checki "graph size" 200 (G.n g)

let test_gen_bridge () =
  let rng = Stdx.Prng.create 3 in
  let g, (u, v) = Dgraph.Gen.bridge_of_clouds rng ~half:20 ~p:0.4 in
  checki "n" 40 (G.n g);
  checkb "bridge exists" true (G.mem_edge g u v);
  checkb "bridge crosses" true (u < 20 && v >= 20)

let small_graph_gen =
  QCheck.make
    ~print:(fun (n, edges) -> Printf.sprintf "n=%d edges=%d" n (List.length edges))
    QCheck.Gen.(
      int_range 1 20 >>= fun n ->
      list_size (int_range 0 40)
        (pair (int_range 0 (max 0 (n - 1))) (int_range 0 (max 0 (n - 1))))
      >>= fun pairs ->
      let edges = List.filter (fun (u, v) -> u <> v) pairs in
      return (n, edges))

(* Builder / columnar-core unit tests *)

let test_builder_basic () =
  let b = G.Builder.create ~capacity:2 5 in
  checki "n" 5 (G.Builder.n b);
  G.Builder.add_edge b 3 1;
  G.Builder.add_edge b 1 3;
  G.Builder.add_edge b 0 4;
  G.Builder.add_edge b 2 0;
  checki "length pre-dedup" 4 (G.Builder.length b);
  let g = G.Builder.freeze b in
  checki "m dedups" 3 (G.m g);
  checkb "equal to create" true (G.equal g (G.create 5 [ (3, 1); (1, 3); (0, 4); (2, 0) ]))

let test_builder_rejects () =
  let b = G.Builder.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.Builder.add_edge: self-loop")
    (fun () -> G.Builder.add_edge b 1 1);
  Alcotest.check_raises "range" (Invalid_argument "Graph.Builder.add_edge: vertex out of range")
    (fun () -> G.Builder.add_edge b 0 3)

let test_of_edge_array () =
  let g = G.of_edge_array 4 [| (2, 3); (0, 1); (1, 2); (0, 1) |] in
  checkb "equal to create" true (G.equal g (G.create 4 [ (2, 3); (0, 1); (1, 2) ]))

let test_of_sorted_csr_roundtrip () =
  let g = G.create 5 [ (0, 1); (1, 2); (2, 4); (0, 4) ] in
  let row_start = Array.make 6 0 in
  for v = 0 to 4 do
    row_start.(v + 1) <- row_start.(v) + G.degree g v
  done;
  let col = Array.concat (List.init 5 (fun v -> G.neighbors g v)) in
  let g' = G.of_sorted_csr ~n:5 ~row_start ~col in
  checkb "round-trips" true (G.equal g g')

let test_neighbors_owned_copy () =
  let g = G.create 4 [ (0, 1); (0, 2); (0, 3) ] in
  let nbrs = G.neighbors g 0 in
  nbrs.(0) <- 99;
  (* The graph must be unaffected by mutating the returned row copy. *)
  Alcotest.(check (array int)) "fresh copy" [| 1; 2; 3 |] (G.neighbors g 0);
  checkb "edge intact" true (G.mem_edge g 0 1)

let test_neighbor_iterators () =
  let g = G.create 6 [ (2, 0); (2, 5); (2, 3) ] in
  let via_iter = ref [] in
  G.iter_neighbors (fun u -> via_iter := u :: !via_iter) g 2;
  Alcotest.(check (list int)) "iter order" [ 0; 3; 5 ] (List.rev !via_iter);
  checki "fold counts" 3 (G.fold_neighbors (fun _ acc -> acc + 1) g 2 0);
  checki "indexed access" 3 (G.neighbor g 2 1);
  checkb "exists hit" true (G.exists_neighbor (fun u -> u = 5) g 2);
  checkb "exists miss" false (G.exists_neighbor (fun u -> u = 4) g 2);
  checkb "exists empty row" false (G.exists_neighbor (fun _ -> true) g 1)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"m counts edges" ~count:300 small_graph_gen (fun (n, edges) ->
           let g = G.create n edges in
           G.m g = Array.length (G.edges_array g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mem_edge agrees with edges" ~count:200 small_graph_gen
         (fun (n, edges) ->
           let g = G.create n edges in
           Array.for_all (fun (u, v) -> G.mem_edge g u v && G.mem_edge g v u)
             (G.edges_array g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"relabel by inverse is identity" ~count:200
         QCheck.(pair small_graph_gen (int_range 0 1000))
         (fun ((n, edges), seed) ->
           let g = G.create n edges in
           let sigma = Stdx.Prng.permutation (Stdx.Prng.create seed) n in
           let inverse = Array.make n 0 in
           Array.iteri (fun i x -> inverse.(x) <- i) sigma;
           G.equal g (G.relabel (G.relabel g sigma) inverse)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"degree sum is 2m" ~count:300 small_graph_gen (fun (n, edges) ->
           let g = G.create n edges in
           let total = ref 0 in
           for v = 0 to n - 1 do
             total := !total + G.degree g v
           done;
           !total = 2 * G.m g));
    (* Equivalence suite for the columnar constructors: on random edge
       multisets (duplicates, both orientations, unsorted), every build
       path must land on the same frozen graph as [create]. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Builder.freeze equals create" ~count:300 small_graph_gen
         (fun (n, edges) ->
           let b = G.Builder.create ~capacity:1 n in
           List.iter (fun (u, v) -> G.Builder.add_edge b u v) edges;
           G.equal (G.Builder.freeze b) (G.create n edges)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"of_edge_array equals create" ~count:300 small_graph_gen
         (fun (n, edges) ->
           G.equal (G.of_edge_array n (Array.of_list edges)) (G.create n edges)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"iter_edges/edges_array agree" ~count:300 small_graph_gen
         (fun (n, edges) ->
           let g = G.create n edges in
           let via_iter = List.rev (G.fold_edges (fun u v acc -> (u, v) :: acc) g []) in
           via_iter = Array.to_list (G.edges_array g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"neighbor iterators agree with neighbors" ~count:300 small_graph_gen
         (fun (n, edges) ->
           let g = G.create n edges in
           let ok = ref true in
           for v = 0 to n - 1 do
             let row = G.neighbors g v in
             let via_fold = Array.of_list (List.rev (G.fold_neighbors (fun u acc -> u :: acc) g v [])) in
             if row <> via_fold then ok := false;
             Array.iteri (fun j u -> if G.neighbor g v j <> u then ok := false) row;
             if G.exists_neighbor (fun u -> not (Array.mem u row)) g v then ok := false
           done;
           !ok));
    (* The graph IS a cset instance: the underlying store's columns must
       be exactly the normalised edge list, and every construction path
       must land on the same frozen store (same schema, counts, columns). *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cset store mirrors edges_array" ~count:300 small_graph_gen
         (fun (n, edges) ->
           let g = G.create n edges in
           let c = G.cset g in
           let module S = Cset.Store in
           let schema = S.schema c in
           let edge_part = Cset.Schema.part_index schema "edge" in
           let src = S.fixed_column c (Cset.Schema.morphism_index schema "src") in
           let dst = S.fixed_column c (Cset.Schema.morphism_index schema "dst") in
           S.count c (Cset.Schema.part_index schema "vertex") = n
           && S.count c edge_part = G.m g
           && Array.to_list (G.edges_array g)
              = List.init (G.m g) (fun i -> (src.(i), dst.(i)))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"all build paths share one frozen store" ~count:200 small_graph_gen
         (fun (n, edges) ->
           let g = G.create n edges in
           let b = G.Builder.create n in
           List.iter (fun (u, v) -> G.Builder.add_edge b u v) edges;
           Cset.Store.equal (G.cset g) (G.cset (G.Builder.freeze b))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"disjoint_union fast path equals create" ~count:200
         QCheck.(pair small_graph_gen small_graph_gen)
         (fun ((na, ea), (nb, eb)) ->
           let a = G.create na ea and b = G.create nb eb in
           let reference =
             G.create (na + nb) (ea @ List.map (fun (u, v) -> (u + na, v + na)) eb)
           in
           G.equal (G.disjoint_union a b) reference));
  ]

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "create dedup" `Quick test_create_dedup;
          Alcotest.test_case "self loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "edges normalized" `Quick test_edges_normalized;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "union mismatch" `Quick test_union_mismatch;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "relabel invalid" `Quick test_relabel_invalid;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "fold/iter consistency" `Quick test_fold_iter_consistency;
        ] );
      ( "builder",
        [
          Alcotest.test_case "builder basic" `Quick test_builder_basic;
          Alcotest.test_case "builder rejects" `Quick test_builder_rejects;
          Alcotest.test_case "of_edge_array" `Quick test_of_edge_array;
          Alcotest.test_case "of_sorted_csr round-trip" `Quick test_of_sorted_csr_roundtrip;
          Alcotest.test_case "neighbors owned copy" `Quick test_neighbors_owned_copy;
          Alcotest.test_case "neighbor iterators" `Quick test_neighbor_iterators;
        ] );
      ( "generators",
        [
          Alcotest.test_case "path/cycle" `Quick test_gen_path_cycle;
          Alcotest.test_case "complete" `Quick test_gen_complete;
          Alcotest.test_case "matchings" `Quick test_gen_matchings;
          Alcotest.test_case "gnp extremes" `Quick test_gen_gnp_extremes;
          Alcotest.test_case "bipartite" `Quick test_gen_bipartite;
          Alcotest.test_case "grid" `Quick test_gen_grid;
          Alcotest.test_case "configuration model" `Quick test_gen_configuration_model;
          Alcotest.test_case "power law" `Quick test_gen_power_law;
          Alcotest.test_case "bridge" `Quick test_gen_bridge;
        ] );
      ("graph-properties", qcheck_tests);
    ]

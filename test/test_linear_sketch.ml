(* Tests for Linear_sketch: 1-sparse recovery, s-sparse recovery, and the
   L0 sampler — correctness, linearity, and serialization. *)

module One = Linear_sketch.One_sparse
module Sr = Linear_sketch.Sparse_recovery
module L0 = Linear_sketch.L0_sampler

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let one_params seed = One.make_params (Stdx.Prng.create seed) ~universe:10000

let test_one_sparse_zero () =
  let c = One.create (one_params 1) in
  checkb "fresh is zero" true (One.decode c = One.Zero);
  One.update c 5 3;
  One.update c 5 (-3);
  checkb "cancelled is zero" true (One.decode c = One.Zero)

let test_one_sparse_singleton () =
  let c = One.create (one_params 2) in
  One.update c 137 1;
  checkb "singleton" true (One.decode c = One.Singleton (137, 1));
  One.update c 137 4;
  checkb "accumulated weight" true (One.decode c = One.Singleton (137, 5));
  let neg = One.create (one_params 2) in
  One.update neg 9999 (-7);
  checkb "negative weight" true (One.decode neg = One.Singleton (9999, -7))

let test_one_sparse_collision () =
  let c = One.create (one_params 3) in
  One.update c 10 1;
  One.update c 20 1;
  checkb "two items collide" true (One.decode c = One.Collision);
  (* A +1/-1 pair has s0 = 0 but nonzero fingerprint. *)
  let c2 = One.create (one_params 3) in
  One.update c2 10 1;
  One.update c2 20 (-1);
  checkb "cancelling pair detected" true (One.decode c2 = One.Collision)

let test_one_sparse_combine_scale () =
  let params = one_params 4 in
  let a = One.create params and b = One.create params in
  One.update a 42 2;
  One.update b 42 (-2);
  One.update b 77 5;
  let sum = One.combine a b in
  checkb "combine cancels" true (One.decode sum = One.Singleton (77, 5));
  let scaled = One.scale sum 3 in
  checkb "scale" true (One.decode scaled = One.Singleton (77, 15))

let test_one_sparse_params_mismatch () =
  let a = One.create (one_params 5) and b = One.create (one_params 6) in
  Alcotest.check_raises "params mismatch"
    (Invalid_argument "One_sparse.combine: params mismatch") (fun () ->
      ignore (One.combine a b))

let test_one_sparse_serialization () =
  let params = one_params 7 in
  let c = One.create params in
  One.update c 123 (-4);
  let w = Stdx.Bitbuf.Writer.create () in
  One.write c w;
  let c' = One.read params (Stdx.Bitbuf.Reader.of_writer w) in
  checkb "roundtrip decode" true (One.decode c' = One.Singleton (123, -4))

let sr_params seed = Sr.make_params (Stdx.Prng.create seed) ~universe:5000 ~buckets:8 ~reps:3

let test_sparse_recovery_exact () =
  let s = Sr.create (sr_params 1) in
  let items = [ (17, 1); (1000, -2); (4999, 7) ] in
  List.iter (fun (i, w) -> Sr.update s i w) items;
  (match Sr.decode s with
  | Some got -> Alcotest.(check (list (pair int int))) "exact recovery" items got
  | None -> Alcotest.fail "decode failed on 3-sparse input");
  checkb "empty" true (Sr.decode (Sr.create (sr_params 1)) = Some [])

let test_sparse_recovery_cancellation () =
  let params = sr_params 2 in
  let a = Sr.create params and b = Sr.create params in
  List.iter (fun i -> Sr.update a i 1) [ 1; 2; 3; 4 ];
  List.iter (fun i -> Sr.update b i (-1)) [ 2; 3 ];
  (match Sr.decode (Sr.combine a b) with
  | Some got -> Alcotest.(check (list (pair int int))) "residual" [ (1, 1); (4, 1) ] got
  | None -> Alcotest.fail "decode failed after cancellation")

let test_sparse_recovery_soundness () =
  (* Whatever decode returns (when it succeeds), it must equal the true
     vector: run over random inputs. *)
  let rng = Stdx.Prng.create 11 in
  for trial = 1 to 100 do
    let params = Sr.make_params (Stdx.Prng.create trial) ~universe:2000 ~buckets:8 ~reps:3 in
    let s = Sr.create params in
    let count = Stdx.Prng.int rng 12 in
    let truth = Hashtbl.create 8 in
    for _ = 1 to count do
      let i = Stdx.Prng.int rng 2000 in
      let w = 1 + Stdx.Prng.int rng 5 in
      Sr.update s i w;
      Hashtbl.replace truth i (w + Option.value ~default:0 (Hashtbl.find_opt truth i))
    done;
    match Sr.decode s with
    | None -> () (* allowed: too dense *)
    | Some got ->
        let expected =
          Hashtbl.fold (fun i w acc -> if w <> 0 then (i, w) :: acc else acc) truth []
          |> List.sort compare
        in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "sound (trial %d)" trial)
          expected got
  done

let test_sparse_recovery_success_rate () =
  (* <= buckets/2 items should almost always decode. *)
  let successes = ref 0 in
  for trial = 1 to 100 do
    let params = Sr.make_params (Stdx.Prng.create (trial * 7)) ~universe:3000 ~buckets:8 ~reps:3 in
    let s = Sr.create params in
    let rng = Stdx.Prng.create (trial + 5000) in
    let items = Stdx.Prng.sample_distinct rng 4 3000 in
    Array.iter (fun i -> Sr.update s i 1) items;
    match Sr.decode s with Some l when List.length l = 4 -> incr successes | Some _ | None -> ()
  done;
  checkb (Printf.sprintf "4-sparse decodes >= 95%% (%d)" !successes) true (!successes >= 95)

let l0_params seed = L0.make_params (Stdx.Prng.create seed) ~universe:4096 ()

let test_l0_zero () =
  let s = L0.create (l0_params 1) in
  checkb "zero vector" true (L0.decode s = None);
  L0.update s 100 1;
  L0.update s 100 (-1);
  checkb "cancelled vector" true (L0.decode s = None)

let test_l0_single () =
  let s = L0.create (l0_params 2) in
  L0.update s 3000 (-2);
  checkb "finds the only coordinate" true (L0.decode s = Some (3000, -2))

let test_l0_returns_true_nonzero () =
  let rng = Stdx.Prng.create 13 in
  for trial = 1 to 50 do
    let s = L0.create (l0_params (trial + 100)) in
    let truth = Hashtbl.create 32 in
    let count = 1 + Stdx.Prng.int rng 200 in
    for _ = 1 to count do
      let i = Stdx.Prng.int rng 4096 in
      Hashtbl.replace truth i (1 + Option.value ~default:0 (Hashtbl.find_opt truth i));
      L0.update s i 1
    done;
    match L0.decode s with
    | None -> Alcotest.fail (Printf.sprintf "decode failed with %d nonzeros" count)
    | Some (i, w) ->
        checki (Printf.sprintf "weight right (trial %d)" trial)
          (Option.value ~default:0 (Hashtbl.find_opt truth i))
          w
  done

let test_l0_linearity () =
  let params = l0_params 3 in
  let a = L0.create params and b = L0.create params in
  List.iter (fun i -> L0.update a i 1) [ 5; 6; 7 ];
  List.iter (fun i -> L0.update b i (-1)) [ 5; 6 ];
  checkb "combined leaves the difference" true (L0.decode (L0.combine a b) = Some (7, 1))

let test_l0_serialization () =
  let params = l0_params 4 in
  let s = L0.create params in
  L0.update s 1234 5;
  let w = Stdx.Bitbuf.Writer.create () in
  L0.write s w;
  checki "size_bits matches writer" (Stdx.Bitbuf.Writer.length_bits w) (L0.size_bits s);
  let s' = L0.read params (Stdx.Bitbuf.Reader.of_writer w) in
  checkb "roundtrip decode" true (L0.decode s' = Some (1234, 5))

let test_l0_support_hint () =
  let s = L0.create (l0_params 5) in
  List.iter (fun i -> L0.update s i 2) [ 10; 20 ];
  let hint = L0.support_hint s in
  checkb "hint nonempty" true (hint <> []);
  checkb "hint sound" true (List.for_all (fun (i, w) -> (i = 10 || i = 20) && w = 2) hint)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"one-sparse decode on random singleton" ~count:300
         QCheck.(triple (int_range 0 1000) (int_range 0 9999) (int_range 1 100))
         (fun (seed, i, w) ->
           let c = One.create (one_params seed) in
           One.update c i w;
           One.decode c = One.Singleton (i, w)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"one-sparse serialization roundtrip" ~count:200
         QCheck.(pair (int_range 0 1000) (small_list (pair (int_range 0 9999) (int_range (-50) 50))))
         (fun (seed, updates) ->
           let params = one_params seed in
           let c = One.create params in
           List.iter (fun (i, w) -> One.update c i w) updates;
           let w = Stdx.Bitbuf.Writer.create () in
           One.write c w;
           let c' = One.read params (Stdx.Bitbuf.Reader.of_writer w) in
           One.decode c' = One.decode c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"combine = updates applied to one sketch" ~count:200
         QCheck.(triple (int_range 0 1000)
                   (small_list (pair (int_range 0 4999) (int_range (-9) 9)))
                   (small_list (pair (int_range 0 4999) (int_range (-9) 9))))
         (fun (seed, ua, ub) ->
           let params = sr_params seed in
           let a = Sr.create params and b = Sr.create params and whole = Sr.create params in
           List.iter (fun (i, w) -> Sr.update a i w; Sr.update whole i w) ua;
           List.iter (fun (i, w) -> Sr.update b i w; Sr.update whole i w) ub;
           Sr.decode (Sr.combine a b) = Sr.decode whole));
  ]

(* Flat/boxed equivalence: the [_at] operations over caller-owned
   buffers and the boxed API must act on identical bit patterns
   (PERFORMANCE.md, "Flat sketch layouts"). Same updates through both
   layers must decode the same and serialise byte-identically, from any
   buffer offset; and a Scratch reset-reuse cycle — borrow, poison the
   cached store, re-borrow — must be invisible in the serialised bytes. *)
let writer_bytes w =
  let bytes, bits = Stdx.Bitbuf.Writer.contents w in
  (Bytes.to_string bytes, bits)

let flat_boxed_qcheck =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"one-sparse flat region == boxed cell" ~count:300
         QCheck.(
           triple (int_range 0 1000) (int_range 0 5)
             (small_list (pair (int_range 0 9999) (int_range (-9) 9))))
         (fun (seed, off, updates) ->
           let params = one_params seed in
           let boxed = One.create params in
           let buf = Array.make (off + One.words) 0 in
           List.iter
             (fun (i, w) ->
               One.update boxed i w;
               One.update_at params buf off i w)
             updates;
           let wb = Stdx.Bitbuf.Writer.create () and wf = Stdx.Bitbuf.Writer.create () in
           One.write boxed wb;
           One.write_at params buf off wf;
           One.decode_at params buf off = One.decode boxed && writer_bytes wf = writer_bytes wb));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"sparse-recovery flat region == boxed sketch" ~count:200
         QCheck.(
           triple (int_range 0 1000) (int_range 0 5)
             (small_list (pair (int_range 0 4999) (int_range (-9) 9))))
         (fun (seed, off, updates) ->
           let params = sr_params seed in
           let boxed = Sr.create params in
           let buf = Array.make (off + Sr.words params) 0 in
           List.iter
             (fun (i, w) ->
               Sr.update boxed i w;
               Sr.update_at params buf off i w)
             updates;
           let wb = Stdx.Bitbuf.Writer.create () and wf = Stdx.Bitbuf.Writer.create () in
           Sr.write boxed wb;
           Sr.write_at params buf off wf;
           Sr.decode_at params buf off = Sr.decode boxed && writer_bytes wf = writer_bytes wb));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"l0 of_buffer == private-buffer sampler" ~count:200
         QCheck.(
           triple (int_range 0 1000) (int_range 0 7)
             (small_list (pair (int_range 0 4095) (int_range (-5) 5))))
         (fun (seed, off, updates) ->
           let params = l0_params seed in
           let boxed = L0.create params in
           let buf = Array.make (off + L0.size_words params) 0 in
           let flat = L0.of_buffer params buf off in
           List.iter
             (fun (i, w) ->
               L0.update boxed i w;
               L0.update flat i w)
             updates;
           let wb = Stdx.Bitbuf.Writer.create () and wf = Stdx.Bitbuf.Writer.create () in
           L0.write boxed wb;
           L0.write flat wf;
           L0.decode flat = L0.decode boxed && writer_bytes wf = writer_bytes wb));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"arena reset-reuse leaves sampler bytes unchanged" ~count:100
         QCheck.(pair (int_range 0 1000) (small_list (pair (int_range 0 4095) (int_range (-5) 5))))
         (fun (seed, updates) ->
           let params = l0_params seed in
           let arena = Stdx.Scratch.create () in
           let run () =
             let buf = Stdx.Scratch.ints arena "test.l0" (L0.size_words params) in
             let s = L0.of_buffer params buf 0 in
             List.iter (fun (i, w) -> L0.update s i w) updates;
             let w = Stdx.Bitbuf.Writer.create () in
             L0.write s w;
             writer_bytes w
           in
           let first = run () in
           (* Poison the cached backing store, then re-borrow: the
              zero-fill reset must make the rerun byte-identical. *)
           let poison = Stdx.Scratch.dirty_ints arena "test.l0" (L0.size_words params) in
           Array.fill poison 0 (Array.length poison) max_int;
           run () = first));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"l0 reset == fresh sampler" ~count:100
         QCheck.(
           triple (int_range 0 1000)
             (small_list (pair (int_range 0 4095) (int_range (-5) 5)))
             (small_list (pair (int_range 0 4095) (int_range (-5) 5))))
         (fun (seed, first, second) ->
           let params = l0_params seed in
           let reused = L0.create params in
           List.iter (fun (i, w) -> L0.update reused i w) first;
           L0.reset reused;
           let fresh = L0.create params in
           List.iter
             (fun (i, w) ->
               L0.update reused i w;
               L0.update fresh i w)
             second;
           let wr = Stdx.Bitbuf.Writer.create () and wf = Stdx.Bitbuf.Writer.create () in
           L0.write reused wr;
           L0.write fresh wf;
           writer_bytes wr = writer_bytes wf));
  ]

let scale_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"one-sparse scale is linear" ~count:200
       QCheck.(triple (int_range 0 1000) (int_range 0 9999) (pair (int_range 1 20) (int_range (-5) 5)))
       (fun (seed, i, (w, c)) ->
         let params = one_params seed in
         let a = One.create params in
         One.update a i w;
         let scaled = One.scale a c in
         let direct = One.create params in
         One.update direct i (w * c);
         One.decode scaled = One.decode direct))

let () =
  Alcotest.run "linear_sketch"
    [
      ( "one-sparse",
        [
          Alcotest.test_case "zero" `Quick test_one_sparse_zero;
          Alcotest.test_case "singleton" `Quick test_one_sparse_singleton;
          Alcotest.test_case "collision" `Quick test_one_sparse_collision;
          Alcotest.test_case "combine/scale" `Quick test_one_sparse_combine_scale;
          Alcotest.test_case "params mismatch" `Quick test_one_sparse_params_mismatch;
          Alcotest.test_case "serialization" `Quick test_one_sparse_serialization;
        ] );
      ( "sparse-recovery",
        [
          Alcotest.test_case "exact" `Quick test_sparse_recovery_exact;
          Alcotest.test_case "cancellation" `Quick test_sparse_recovery_cancellation;
          Alcotest.test_case "soundness" `Quick test_sparse_recovery_soundness;
          Alcotest.test_case "success rate" `Quick test_sparse_recovery_success_rate;
        ] );
      ( "l0-sampler",
        [
          Alcotest.test_case "zero" `Quick test_l0_zero;
          Alcotest.test_case "single" `Quick test_l0_single;
          Alcotest.test_case "true nonzero" `Quick test_l0_returns_true_nonzero;
          Alcotest.test_case "linearity" `Quick test_l0_linearity;
          Alcotest.test_case "serialization" `Quick test_l0_serialization;
          Alcotest.test_case "support hint" `Quick test_l0_support_hint;
        ] );
      ("linear-sketch-properties", scale_qcheck :: qcheck_tests);
      ("flat-boxed-equivalence", flat_boxed_qcheck);
    ]

(* Tests for Sketchmodel.Bcc: the broadcast-congested-clique model and its
   cost-preserving equivalence with one-round sketching. *)

module Bcc = Sketchmodel.Bcc
module Model = Sketchmodel.Model
module PC = Sketchmodel.Public_coins
module W = Stdx.Bitbuf.Writer
module R = Stdx.Bitbuf.Reader
module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_of_sketch_same_output () =
  let rng = Stdx.Prng.create 1 in
  for seed = 1 to 10 do
    let g = Dgraph.Gen.gnp rng 30 0.2 in
    let coins = PC.create seed in
    let direct, dstats = Model.run Protocols.Trivial.mm g coins in
    let via_bcc, bstats = Bcc.run (Bcc.of_sketch Protocols.Trivial.mm) g coins in
    checkb "same output" true (direct = via_bcc);
    checki "same per-round cost" dstats.Model.max_bits bstats.Bcc.max_bits_per_round;
    checki "one round" 1 bstats.Bcc.rounds_used
  done

let test_roundtrip_to_sketch () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 2) 25 0.3 in
  let coins = PC.create 5 in
  let roundtripped = Bcc.to_sketch (Bcc.of_sketch Protocols.Trivial.mis) in
  let a, sa = Model.run Protocols.Trivial.mis g coins in
  let b, sb = Model.run roundtripped g coins in
  checkb "same output" true (a = b);
  checki "same cost" sa.Model.max_bits sb.Model.max_bits

let test_to_sketch_rejects_multiround () =
  let two_round =
    {
      Bcc.name = "two";
      rounds = 2;
      broadcast = (fun ~round _ _ _ -> ignore round; W.create ());
      output = (fun ~n _ _ -> n);
    }
  in
  Alcotest.check_raises "multi-round rejected"
    (Invalid_argument "Bcc.to_sketch: protocol uses more than one round") (fun () ->
      ignore (Bcc.to_sketch two_round))

(* A genuinely multi-round protocol: round 1 everyone broadcasts own
   degree; round 2 everyone broadcasts 1 bit "my degree is the maximum";
   output = list of claimed maxima. Exercises history plumbing. *)
let max_degree_protocol =
  {
    Bcc.name = "max-degree";
    rounds = 2;
    broadcast =
      (fun ~round view history _ ->
        let w = W.create () in
        (match (round, Bcc.rounds_so_far history) with
        | 1, _ -> W.uvarint w (Array.length view.Model.neighbors)
        | 2, 1 ->
            let degrees = Array.map R.uvarint (Bcc.round_readers history 1) in
            let maximum = Array.fold_left max 0 degrees in
            W.bit w (Array.length view.Model.neighbors = maximum)
        | _ -> invalid_arg "unexpected round/history");
        w);
    output =
      (fun ~n history _ ->
        if Bcc.rounds_so_far history <> 2 then invalid_arg "bad history";
        let round2 = Bcc.round_readers history 2 in
        List.filter (fun v -> R.bit round2.(v)) (List.init n (fun v -> v)));
  }

let test_two_round_history () =
  let g = Dgraph.Gen.star 8 in
  let claimed, stats = Bcc.run max_degree_protocol g (PC.create 7) in
  Alcotest.(check (list int)) "centre has max degree" [ 0 ] claimed;
  checki "rounds" 2 stats.Bcc.rounds_used;
  checkb "total >= per-round" true (stats.Bcc.max_bits_total >= stats.Bcc.max_bits_per_round)

let test_two_round_history_random () =
  let rng = Stdx.Prng.create 9 in
  for seed = 1 to 10 do
    let g = Dgraph.Gen.gnp rng 20 0.3 in
    let claimed, _ = Bcc.run max_degree_protocol g (PC.create seed) in
    let dmax = G.max_degree g in
    checkb "claims are exactly max-degree vertices" true
      (claimed = List.filter (fun v -> G.degree g v = dmax) (List.init 20 (fun v -> v)))
  done

let test_fresh_readers_per_consumer () =
  (* Every consumer must get its own reader: a protocol where all vertices
     read all of round 1 would break with shared readers. *)
  let echo =
    {
      Bcc.name = "echo";
      rounds = 2;
      broadcast =
        (fun ~round view history _ ->
          let w = W.create () in
          (match (round, Bcc.rounds_so_far history) with
          | 1, _ -> W.uvarint w view.Model.vertex
          | 2, 1 ->
              (* Sum everything broadcast in round 1. *)
              let sum =
                Array.fold_left (fun acc r -> acc + R.uvarint r) 0 (Bcc.round_readers history 1)
              in
              W.uvarint w sum
          | _ -> ());
          w);
      output =
        (fun ~n history _ ->
          if Bcc.rounds_so_far history <> 2 then -1
          else
            Array.to_list (Array.map R.uvarint (Bcc.round_readers history 2))
            |> List.fold_left ( + ) 0
            |> fun s -> s / n);
    }
  in
  let n = 6 in
  let g = G.empty n in
  let per_vertex_sum, _ = Bcc.run echo g (PC.create 3) in
  checki "every vertex read the full round-1 history" (n * (n - 1) / 2) per_vertex_sum

let () =
  Alcotest.run "bcc"
    [
      ( "equivalence",
        [
          Alcotest.test_case "of_sketch same output" `Quick test_of_sketch_same_output;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_to_sketch;
          Alcotest.test_case "multi-round rejected" `Quick test_to_sketch_rejects_multiround;
        ] );
      ( "multi-round",
        [
          Alcotest.test_case "history star" `Quick test_two_round_history;
          Alcotest.test_case "history random" `Quick test_two_round_history_random;
          Alcotest.test_case "fresh readers" `Quick test_fresh_readers_per_consumer;
        ] );
    ]

(* Tests for Dgraph.Mincut (Stoer-Wagner) and Dgraph.Blossom, both against
   brute-force oracles on small graphs. *)

module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Brute-force min cut: try all vertex bipartitions. *)
let brute_min_cut g =
  let n = G.n g in
  if n < 2 then max_int
  else begin
    let best = ref max_int in
    for mask = 1 to (1 lsl n) - 2 do
      let cut = ref 0 in
      G.iter_edges
        (fun u v -> if (mask lsr u) land 1 <> (mask lsr v) land 1 then incr cut)
        g;
      if !cut < !best then best := !cut
    done;
    !best
  end

let brute_max_matching g =
  let edges = G.edges_array g in
  let used = Stdx.Bitset.create (G.n g) in
  let rec go i =
    if i >= Array.length edges then 0
    else begin
      let u, v = edges.(i) in
      let skip = go (i + 1) in
      if Stdx.Bitset.mem used u || Stdx.Bitset.mem used v then skip
      else begin
        Stdx.Bitset.add used u;
        Stdx.Bitset.add used v;
        let take = 1 + go (i + 1) in
        Stdx.Bitset.remove used u;
        Stdx.Bitset.remove used v;
        max skip take
      end
    end
  in
  go 0

let test_mincut_shapes () =
  checki "cycle" 2 (Dgraph.Mincut.min_cut (Dgraph.Gen.cycle 8));
  checki "path" 1 (Dgraph.Mincut.min_cut (Dgraph.Gen.path 6));
  checki "K7" 6 (Dgraph.Mincut.min_cut (Dgraph.Gen.complete 7));
  checki "star" 1 (Dgraph.Mincut.min_cut (Dgraph.Gen.star 9));
  checki "disconnected" 0 (Dgraph.Mincut.min_cut (G.create 4 [ (0, 1); (2, 3) ]));
  checki "single vertex" max_int (Dgraph.Mincut.min_cut (G.empty 1));
  checki "two isolated" 0 (Dgraph.Mincut.min_cut (G.empty 2));
  checki "complete bipartite" 3 (Dgraph.Mincut.min_cut (Dgraph.Gen.complete_bipartite 3 5))

let test_mincut_vs_brute () =
  let rng = Stdx.Prng.create 6 in
  for _ = 1 to 60 do
    let n = 3 + Stdx.Prng.int rng 8 in
    let g = Dgraph.Gen.gnp rng n 0.45 in
    checki (Printf.sprintf "n=%d m=%d" n (G.m g)) (brute_min_cut g) (Dgraph.Mincut.min_cut g)
  done

let test_k_edge_connected () =
  checkb "cycle 2-connected" true (Dgraph.Mincut.is_k_edge_connected (Dgraph.Gen.cycle 6) 2);
  checkb "cycle not 3" false (Dgraph.Mincut.is_k_edge_connected (Dgraph.Gen.cycle 6) 3);
  checkb "k=0 trivial" true (Dgraph.Mincut.is_k_edge_connected (G.empty 3) 0);
  checkb "K5 is 4-connected" true (Dgraph.Mincut.is_k_edge_connected (Dgraph.Gen.complete 5) 4)

let test_blossom_shapes () =
  checki "path P5" 2 (Dgraph.Blossom.maximum_matching_size (Dgraph.Gen.path 5));
  checki "even cycle" 4 (Dgraph.Blossom.maximum_matching_size (Dgraph.Gen.cycle 8));
  checki "odd cycle" 4 (Dgraph.Blossom.maximum_matching_size (Dgraph.Gen.cycle 9));
  checki "K6 perfect" 3 (Dgraph.Blossom.maximum_matching_size (Dgraph.Gen.complete 6));
  checki "star" 1 (Dgraph.Blossom.maximum_matching_size (Dgraph.Gen.star 7));
  checki "empty" 0 (Dgraph.Blossom.maximum_matching_size (G.empty 4))

let test_blossom_triangle_pendant () =
  (* A triangle with a pendant: the blossom case bipartite algorithms
     miss. 0-1-2 triangle, 3 hangs off 0: perfect matching (0,3),(1,2). *)
  let g = G.create 4 [ (0, 1); (1, 2); (0, 2); (0, 3) ] in
  checki "blossom finds perfect" 2 (Dgraph.Blossom.maximum_matching_size g)

let test_blossom_flowers () =
  (* Two triangles joined by a path: classic blossom stress. *)
  let g =
    G.create 8 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7); (5, 7) ]
  in
  checki "matches brute" (brute_max_matching g) (Dgraph.Blossom.maximum_matching_size g)

let test_blossom_output_is_matching () =
  let rng = Stdx.Prng.create 8 in
  for _ = 1 to 30 do
    let n = 4 + Stdx.Prng.int rng 20 in
    let g = Dgraph.Gen.gnp rng n 0.3 in
    let m = Dgraph.Blossom.maximum_matching g in
    checkb "valid matching" true (Dgraph.Matching.is_matching g m)
  done

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"blossom = brute force" ~count:200
         QCheck.(pair (int_range 2 11) (int_range 0 100000))
         (fun (n, seed) ->
           let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) n 0.4 in
           Dgraph.Blossom.maximum_matching_size g = brute_max_matching g));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mincut = brute force" ~count:100
         QCheck.(pair (int_range 2 9) (int_range 0 100000))
         (fun (n, seed) ->
           let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) n 0.5 in
           Dgraph.Mincut.min_cut g = brute_min_cut g));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"greedy <= blossom <= 2 greedy" ~count:100
         QCheck.(pair (int_range 2 20) (int_range 0 100000))
         (fun (n, seed) ->
           let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) n 0.3 in
           let greedy = List.length (Dgraph.Matching.greedy g ()) in
           let opt = Dgraph.Blossom.maximum_matching_size g in
           greedy <= opt && opt <= 2 * greedy));
  ]

let () =
  Alcotest.run "mincut_blossom"
    [
      ( "mincut",
        [
          Alcotest.test_case "shapes" `Quick test_mincut_shapes;
          Alcotest.test_case "vs brute force" `Quick test_mincut_vs_brute;
          Alcotest.test_case "k-edge-connected" `Quick test_k_edge_connected;
        ] );
      ( "blossom",
        [
          Alcotest.test_case "shapes" `Quick test_blossom_shapes;
          Alcotest.test_case "triangle pendant" `Quick test_blossom_triangle_pendant;
          Alcotest.test_case "flowers" `Quick test_blossom_flowers;
          Alcotest.test_case "output valid" `Quick test_blossom_output_is_matching;
        ] );
      ("mincut-blossom-properties", qcheck_tests);
    ]

(* Tests for Stdx.Bitbuf: the bit-exact message buffers every protocol's
   cost accounting rests on. *)

module W = Stdx.Bitbuf.Writer
module R = Stdx.Bitbuf.Reader

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_empty () =
  let w = W.create () in
  checki "empty length" 0 (W.length_bits w);
  let r = R.of_writer w in
  checki "nothing to read" 0 (R.remaining_bits r)

let test_single_bits () =
  let w = W.create () in
  W.bit w true;
  W.bit w false;
  W.bit w true;
  checki "3 bits" 3 (W.length_bits w);
  let r = R.of_writer w in
  checkb "bit 1" true (R.bit r);
  checkb "bit 2" false (R.bit r);
  checkb "bit 3" true (R.bit r);
  checki "drained" 0 (R.remaining_bits r)

let test_bits_roundtrip () =
  let w = W.create () in
  W.bits w 0 ~width:0;
  W.bits w 5 ~width:3;
  W.bits w 1023 ~width:10;
  W.bits w 0 ~width:7;
  checki "lengths add" 20 (W.length_bits w);
  let r = R.of_writer w in
  checki "width 0" 0 (R.bits r ~width:0);
  checki "width 3" 5 (R.bits r ~width:3);
  checki "width 10" 1023 (R.bits r ~width:10);
  checki "width 7 zero" 0 (R.bits r ~width:7)

let test_bits_invalid () =
  let w = W.create () in
  Alcotest.check_raises "value too wide"
    (Invalid_argument "Bitbuf.Writer.bits: value does not fit width") (fun () ->
      W.bits w 8 ~width:3);
  Alcotest.check_raises "negative value"
    (Invalid_argument "Bitbuf.Writer.bits: value does not fit width") (fun () ->
      W.bits w (-1) ~width:5);
  Alcotest.check_raises "width too large" (Invalid_argument "Bitbuf.Writer.bits: width")
    (fun () -> W.bits w 0 ~width:63)

let test_uvarint_values () =
  List.iter
    (fun v ->
      let w = W.create () in
      W.uvarint w v;
      let r = R.of_writer w in
      checki (Printf.sprintf "uvarint %d" v) v (R.uvarint r))
    [ 0; 1; 127; 128; 255; 300; 16383; 16384; 1 lsl 20; (1 lsl 40) + 12345 ]

let test_uvarint_size () =
  let size v =
    let w = W.create () in
    W.uvarint w v;
    W.length_bits w
  in
  checki "small = 1 byte" 8 (size 0);
  checki "127 = 1 byte" 8 (size 127);
  checki "128 = 2 bytes" 16 (size 128);
  checki "16383 = 2 bytes" 16 (size 16383);
  checki "16384 = 3 bytes" 24 (size 16384)

let test_int_list () =
  let l = [ 0; 5; 128; 99999 ] in
  let w = W.create () in
  W.int_list w l;
  let r = R.of_writer w in
  Alcotest.(check (list int)) "int_list roundtrip" l (R.int_list r);
  let w2 = W.create () in
  W.int_list w2 [];
  Alcotest.(check (list int)) "empty list" [] (R.int_list (R.of_writer w2))

let test_underflow () =
  let w = W.create () in
  W.bit w true;
  let r = R.of_writer w in
  ignore (R.bit r);
  Alcotest.check_raises "underflow" R.Underflow (fun () -> ignore (R.bit r))

let test_interleaved () =
  let w = W.create () in
  W.bit w true;
  W.uvarint w 300;
  W.bits w 9 ~width:4;
  W.int_list w [ 7; 8 ];
  let r = R.of_writer w in
  checkb "bit" true (R.bit r);
  checki "uvarint" 300 (R.uvarint r);
  checki "bits" 9 (R.bits r ~width:4);
  Alcotest.(check (list int)) "list" [ 7; 8 ] (R.int_list r);
  checki "drained" 0 (R.remaining_bits r)

let test_growth () =
  (* Force the internal buffer to grow several times. *)
  let w = W.create () in
  for i = 0 to 9999 do
    W.bits w (i land 255) ~width:8
  done;
  checki "80000 bits" 80000 (W.length_bits w);
  let r = R.of_writer w in
  for i = 0 to 9999 do
    checki "byte back" (i land 255) (R.bits r ~width:8)
  done

let test_contents_partial_byte () =
  let w = W.create () in
  W.bits w 5 ~width:3;
  let bytes, len = W.contents w in
  checki "bit length" 3 len;
  checki "one byte" 1 (Bytes.length bytes);
  (* 101 in the top bits: 1010_0000 *)
  checki "payload" 0xA0 (Char.code (Bytes.get bytes 0))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"uvarint roundtrip" ~count:1000
         QCheck.(int_bound ((1 lsl 50) - 1))
         (fun v ->
           let w = W.create () in
           W.uvarint w v;
           R.uvarint (R.of_writer w) = v));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bit sequence roundtrip" ~count:300
         QCheck.(list bool)
         (fun bits ->
           let w = W.create () in
           List.iter (W.bit w) bits;
           let r = R.of_writer w in
           List.for_all (fun b -> R.bit r = b) bits && R.remaining_bits r = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"int_list roundtrip" ~count:300
         QCheck.(list (int_bound 100000))
         (fun l ->
           let w = W.create () in
           W.int_list w l;
           R.int_list (R.of_writer w) = l));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mixed width fields roundtrip" ~count:300
         QCheck.(list (pair (int_bound 20) (int_bound ((1 lsl 20) - 1))))
         (fun fields ->
           let fields = List.map (fun (width, v) -> (width, v land ((1 lsl width) - 1))) fields in
           let w = W.create () in
           List.iter (fun (width, v) -> W.bits w v ~width) fields;
           let r = R.of_writer w in
           List.for_all (fun (width, v) -> R.bits r ~width = v) fields));
    (* Mixed-op sequences: every writer operation interleaved at arbitrary
       (usually non-byte-aligned) positions must read back exactly, with
       nothing left over. Strings in particular take both paths — the
       aligned whole-byte blit and the bit-by-bit spill. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mixed op sequence roundtrip" ~count:500
         QCheck.(
           list
             (oneof
                [
                  map (fun b -> `Bit b) bool;
                  map
                    (fun (width, v) -> `Bits (width, v land ((1 lsl width) - 1)))
                    (pair (int_range 1 20) (int_bound ((1 lsl 20) - 1)));
                  map (fun v -> `Uvarint v) (int_bound ((1 lsl 40) - 1));
                  map (fun s -> `Str s) (string_gen_of_size Gen.(0 -- 12) Gen.char);
                  map (fun l -> `IntList l) (list_of_size Gen.(0 -- 6) (int_bound 100000));
                ]))
         (fun ops ->
           let w = W.create () in
           List.iter
             (function
               | `Bit b -> W.bit w b
               | `Bits (width, v) -> W.bits w v ~width
               | `Uvarint v -> W.uvarint w v
               | `Str s -> W.string w s
               | `IntList l -> W.int_list w l)
             ops;
           let r = R.of_writer w in
           List.for_all
             (function
               | `Bit b -> R.bit r = b
               | `Bits (width, v) -> R.bits r ~width = v
               | `Uvarint v -> R.uvarint r = v
               | `Str s -> R.string r ~len:(String.length s) = s
               | `IntList l -> R.int_list r = l)
             ops
           && R.remaining_bits r = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"string roundtrip at every bit offset" ~count:300
         QCheck.(pair (int_bound 7) (string_gen_of_size Gen.(0 -- 16) Gen.char))
         (fun (lead, s) ->
           let w = W.create () in
           for i = 1 to lead do
             W.bit w (i mod 2 = 0)
           done;
           W.string w s;
           let r = R.of_writer w in
           for i = 1 to lead do
             ignore (R.bit r);
             ignore i
           done;
           R.string r ~len:(String.length s) = s && R.remaining_bits r = 0));
  ]

let test_string_unaligned () =
  (* One leading bit forces the per-byte spill path; no leading bit takes
     the whole-byte blit; both must agree with [Reader.of_string] framing. *)
  let s = "hello \x00\xff world" in
  let aligned = W.create () in
  W.string aligned s;
  checki "aligned length" (8 * String.length s) (W.length_bits aligned);
  checkb "aligned roundtrip" true (R.string (R.of_writer aligned) ~len:(String.length s) = s);
  let spill = W.create () in
  W.bit spill true;
  W.string spill s;
  let r = R.of_writer spill in
  checkb "leading bit" true (R.bit r);
  checkb "unaligned roundtrip" true (R.string r ~len:(String.length s) = s);
  let r = R.of_string s in
  checki "of_string bits" (8 * String.length s) (R.remaining_bits r);
  checkb "of_string reads bytes back" true (R.string r ~len:(String.length s) = s);
  let short = R.of_string "ab" in
  checkb "string underflow" true
    (match R.string short ~len:3 with _ -> false | exception R.Underflow -> true)

let () =
  Alcotest.run "bitbuf"
    [
      ( "bitbuf",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single bits" `Quick test_single_bits;
          Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "bits invalid" `Quick test_bits_invalid;
          Alcotest.test_case "uvarint values" `Quick test_uvarint_values;
          Alcotest.test_case "uvarint size" `Quick test_uvarint_size;
          Alcotest.test_case "int list" `Quick test_int_list;
          Alcotest.test_case "underflow" `Quick test_underflow;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "partial byte" `Quick test_contents_partial_byte;
          Alcotest.test_case "string unaligned" `Quick test_string_unaligned;
        ] );
      ("bitbuf-properties", qcheck_tests);
    ]

(* Tests for Stdx.Prime, Stdx.Hashing and Stdx.Stats. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let trial_division n =
  if n < 2 then false
  else begin
    let ok = ref true in
    let d = ref 2 in
    while !d * !d <= n do
      if n mod !d = 0 then ok := false;
      incr d
    done;
    !ok
  end

let test_small_primes () =
  for n = 0 to 2000 do
    checkb (Printf.sprintf "is_prime %d" n) (trial_division n) (Stdx.Prime.is_prime n)
  done

let test_known_primes () =
  List.iter
    (fun p -> checkb (string_of_int p) true (Stdx.Prime.is_prime p))
    [ 1048583; 2147483629; 999999937 ];
  List.iter
    (fun c -> checkb (string_of_int c) false (Stdx.Prime.is_prime c))
    [ 1048581; 2147483630; 1000000000 ]

let test_next_prime () =
  checki "above 10" 11 (Stdx.Prime.next_prime_above 10);
  checki "above 13" 17 (Stdx.Prime.next_prime_above 13);
  checki "above 1" 2 (Stdx.Prime.next_prime_above 1);
  checki "above 2^20" 1048583 (Stdx.Prime.next_prime_above (1 lsl 20));
  checkb "result prime" true (Stdx.Prime.is_prime (Stdx.Prime.next_prime_above 500000))

let test_prime_range_guard () =
  Alcotest.check_raises "out of range" (Invalid_argument "Prime.is_prime: out of range")
    (fun () -> ignore (Stdx.Prime.is_prime (1 lsl 31)))

let test_hashing_range () =
  let g = Stdx.Prng.create 5 in
  let h = Stdx.Hashing.sample g ~universe:1000 ~buckets:17 in
  checki "buckets" 17 (Stdx.Hashing.buckets h);
  for x = 0 to 999 do
    let v = Stdx.Hashing.apply h x in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_hashing_deterministic () =
  let g = Stdx.Prng.create 5 in
  let h = Stdx.Hashing.sample g ~universe:1000 ~buckets:8 in
  checki "same input same output" (Stdx.Hashing.apply h 123) (Stdx.Hashing.apply h 123)

let test_hashing_spread () =
  (* Average over several sampled functions: collisions of a fixed pair
     should be near 1/buckets. *)
  let g = Stdx.Prng.create 6 in
  let buckets = 16 in
  let trials = 2000 in
  let collisions = ref 0 in
  for _ = 1 to trials do
    let h = Stdx.Hashing.sample g ~universe:10000 ~buckets in
    if Stdx.Hashing.apply h 17 = Stdx.Hashing.apply h 9342 then incr collisions
  done;
  let rate = float_of_int !collisions /. float_of_int trials in
  checkb "pairwise collision near 1/m" true (abs_float (rate -. (1. /. float_of_int buckets)) < 0.03)

let test_mix64_bijective_sample () =
  let seen = Hashtbl.create 1000 in
  for x = 0 to 9999 do
    let v = Stdx.Hashing.mix64 x in
    checkb "no collision in sample" false (Hashtbl.mem seen v);
    Hashtbl.replace seen v ()
  done

let test_stats_basics () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "mean" 3. (Stdx.Stats.mean xs);
  checkf "variance" 2.5 (Stdx.Stats.variance xs);
  checkf "median" 3. (Stdx.Stats.quantile xs 0.5);
  checkf "min quantile" 1. (Stdx.Stats.quantile xs 0.);
  checkf "max quantile" 5. (Stdx.Stats.quantile xs 1.);
  let s = Stdx.Stats.summarize xs in
  checki "count" 5 s.Stdx.Stats.count;
  checkf "p90" 4.6 s.Stdx.Stats.p90

let test_stats_degenerate () =
  checkf "empty mean" 0. (Stdx.Stats.mean [||]);
  checkf "single variance" 0. (Stdx.Stats.variance [| 42. |]);
  Alcotest.check_raises "empty quantile" (Invalid_argument "Stats.quantile: empty") (fun () ->
      ignore (Stdx.Stats.quantile [||] 0.5))

let test_wilson () =
  let lo, hi = Stdx.Stats.wilson_interval ~successes:50 ~trials:100 ~z:1.96 in
  checkb "contains phat" true (lo < 0.5 && hi > 0.5);
  checkb "ordered" true (lo <= hi);
  let lo0, hi0 = Stdx.Stats.wilson_interval ~successes:0 ~trials:0 ~z:1.96 in
  checkf "no data lo" 0. lo0;
  checkf "no data hi" 1. hi0;
  let lo1, _ = Stdx.Stats.wilson_interval ~successes:100 ~trials:100 ~z:1.96 in
  checkb "all successes high lower bound" true (lo1 > 0.9)

let test_binomial_tail () =
  (* Bin(3, 1/2): P[X >= 2] = 4/8 = 0.5 *)
  Alcotest.(check (float 1e-9)) "bin(3,.5)>=2" 0.5 (Stdx.Stats.binomial_tail_ge ~n:3 ~p:0.5 ~k:2);
  Alcotest.(check (float 1e-9)) "bin(3,.5)>=0" 1.0 (Stdx.Stats.binomial_tail_ge ~n:3 ~p:0.5 ~k:0);
  Alcotest.(check (float 1e-9)) "bin(3,.5)>=4" 0.0 (Stdx.Stats.binomial_tail_ge ~n:3 ~p:0.5 ~k:4);
  Alcotest.(check (float 1e-9)) "p=0" 0.0 (Stdx.Stats.binomial_tail_ge ~n:10 ~p:0. ~k:1);
  Alcotest.(check (float 1e-9)) "p=1" 1.0 (Stdx.Stats.binomial_tail_ge ~n:10 ~p:1. ~k:10)

let test_chernoff_dominates () =
  (* The Chernoff bound must upper-bound the exact lower-tail probability:
     P[Bin(n,p) <= (1-d) n p] <= exp(-d^2 n p / 2). *)
  List.iter
    (fun (n, p, delta) ->
      let np = float_of_int n *. p in
      let cutoff = int_of_float (floor ((1. -. delta) *. np)) in
      let exact = 1. -. Stdx.Stats.binomial_tail_ge ~n ~p ~k:(cutoff + 1) in
      let bound = Stdx.Stats.chernoff_lower_tail ~n ~p ~delta in
      checkb
        (Printf.sprintf "chernoff n=%d p=%.2f d=%.2f" n p delta)
        true
        (exact <= bound +. 1e-9))
    [ (50, 0.5, 0.3); (100, 0.5, 0.2); (200, 0.3, 0.25); (40, 0.7, 0.4) ]

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"quantile within range" ~count:300
         QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.)) (float_bound_inclusive 1.))
         (fun (l, q) ->
           let xs = Array.of_list l in
           let v = Stdx.Stats.quantile xs q in
           let lo = Array.fold_left min xs.(0) xs and hi = Array.fold_left max xs.(0) xs in
           v >= lo -. 1e-9 && v <= hi +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"variance nonnegative" ~count:300
         QCheck.(list (float_bound_exclusive 1000.))
         (fun l -> Stdx.Stats.variance (Array.of_list l) >= 0.));
  ]

let () =
  Alcotest.run "numeric"
    [
      ( "prime",
        [
          Alcotest.test_case "small primes vs trial division" `Quick test_small_primes;
          Alcotest.test_case "known primes" `Quick test_known_primes;
          Alcotest.test_case "next prime" `Quick test_next_prime;
          Alcotest.test_case "range guard" `Quick test_prime_range_guard;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "range" `Quick test_hashing_range;
          Alcotest.test_case "deterministic" `Quick test_hashing_deterministic;
          Alcotest.test_case "pairwise spread" `Quick test_hashing_spread;
          Alcotest.test_case "mix64 injective sample" `Quick test_mix64_bijective_sample;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "degenerate" `Quick test_stats_degenerate;
          Alcotest.test_case "wilson" `Quick test_wilson;
          Alcotest.test_case "binomial tail" `Quick test_binomial_tail;
          Alcotest.test_case "chernoff dominates exact" `Quick test_chernoff_dominates;
        ] );
      ("numeric-properties", qcheck_tests);
    ]

(* The poll-based event engine, attacked over real sockets: incremental
   frame reassembly (slowloris), pipelining with in-order replies,
   buffered partial writes to a stalled reader, the idle-timeout /
   rate-limit / max-connections hardening knobs, EOF-driven compute
   cancellation, and connections whose fd number exceeds FD_SETSIZE —
   the cliff that broke the old select(2)-based client_gone probe.

   [Wire.Decoder] unit tests live here too: the daemon's framing is only
   as good as reassembly across arbitrary chunk boundaries. *)

module T = Report.Tabular
module W = Server.Wire

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let is_ok j = T.member "ok" j = Some (T.Jbool true)

let error_tag j =
  match T.member "error" j with Some (T.Jstr e) -> e | _ -> "(no error field)"

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let with_daemon ?workers ?capacity ?max_conns ?idle_timeout_s ?rate_limit f =
  let d = Server.Daemon.start ?workers ?capacity ?max_conns ?idle_timeout_s ?rate_limit () in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop ~abort_connections:true d;
      Server.Daemon.wait d)
    (fun () -> f d (Server.Daemon.port d))

(* ------------------------------------------------------------------ *)
(* Wire.Decoder: reassembly across arbitrary chunk boundaries          *)

let feed_string dec s ~chunk =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let len = min chunk (n - off) in
      W.Decoder.feed dec (Bytes.sub b off len) ~off:0 ~len;
      go (off + len)
    end
  in
  go 0

let drain dec =
  let rec go acc =
    match W.Decoder.next dec with Some f -> go (f :: acc) | None -> List.rev acc
  in
  go []

let test_decoder_reassembly () =
  let frames = [ "{\"op\":\"ping\"}"; ""; String.make 300 'x'; "tail" ] in
  let stream = String.concat "" (List.map W.encode frames) in
  (* Every chunk size must produce the same frames in the same order —
     byte-at-a-time is the slowloris case, large chunks the batched one. *)
  List.iter
    (fun chunk ->
      let dec = W.Decoder.create () in
      feed_string dec stream ~chunk;
      Alcotest.(check (list string))
        (Printf.sprintf "chunk=%d" chunk)
        frames (drain dec);
      checki (Printf.sprintf "nothing buffered after chunk=%d" chunk) 0 (W.Decoder.buffered dec))
    [ 1; 2; 3; 7; 64; String.length stream ];
  (* A frame cut mid-payload stays buffered, not delivered. *)
  let dec = W.Decoder.create () in
  let frame = W.encode "{\"op\":\"list\"}" in
  feed_string dec (String.sub frame 0 (String.length frame - 3)) ~chunk:4;
  checkb "partial frame not delivered" true (W.Decoder.next dec = None);
  checkb "partial frame counted as buffered" true (W.Decoder.buffered dec > 0)

let test_decoder_defenses () =
  (* Nine continuation bytes: header budget exhausted. *)
  let dec = W.Decoder.create () in
  checkb "overlong header raises Malformed" true
    (match feed_string dec (String.make 9 '\xff') ~chunk:1 with
    | () -> false
    | exception W.Malformed _ -> true);
  (* A declared size over the cap dies at the header, before any payload
     allocation. *)
  let w = Stdx.Bitbuf.Writer.create () in
  Stdx.Bitbuf.Writer.uvarint w (W.max_frame + 1);
  let header, _ = Stdx.Bitbuf.Writer.contents w in
  let dec = W.Decoder.create () in
  checkb "oversized declaration raises Oversized" true
    (match feed_string dec (Bytes.to_string header) ~chunk:2 with
    | () -> false
    | exception W.Oversized _ -> true)

(* ------------------------------------------------------------------ *)
(* Slowloris and pipelining                                            *)

let test_slowloris () =
  with_daemon ~workers:1 ~capacity:4 (fun _ port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* One byte every 5 ms: the frame trickles in over ~15 poll
             wakeups; the decoder must reassemble it exactly once. *)
          String.iter
            (fun c ->
              send_all fd (String.make 1 c);
              Thread.delay 0.005)
            (W.encode "{\"op\":\"ping\"}");
          checkb "slow frame answered" true (is_ok (T.json_of_string (W.read_frame fd)))))

let test_pipelining_in_order () =
  with_daemon ~workers:1 ~capacity:4 (fun _ port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Ten distinguishable requests in ONE write; the `cache keys`
             echo of [prefix] proves each reply matches its request and
             that order survived. *)
          let req i =
            W.encode
              (Printf.sprintf "{\"op\":\"cache\",\"action\":\"keys\",\"prefix\":\"p%d\"}" i)
          in
          send_all fd (String.concat "" (List.init 10 req));
          List.iteri
            (fun i () ->
              let j = T.json_of_string (W.read_frame fd) in
              checkb (Printf.sprintf "reply %d ok" i) true (is_ok j);
              checkb
                (Printf.sprintf "reply %d matches request %d" i i)
                true
                (T.member "prefix" j = Some (T.Jstr (Printf.sprintf "p%d" i))))
            (List.init 10 (fun _ -> ()))))

let test_stalled_reader_buffered_writes () =
  with_daemon ~workers:1 ~capacity:4 (fun _ port ->
      let run_req =
        T.string_of_json
          (T.Jobj [ ("op", T.Jstr "run"); ("id", T.Jstr "claim31"); ("smoke", T.Jbool true) ])
      in
      (* Warm the cache so every pipelined request below is a pure hit —
         the test measures the write path, not the scheduler. *)
      let warm = Server.Client.with_connection ~port (fun c -> Server.Client.request c run_req) in
      checkb "warm-up ok" true (is_ok (T.json_of_string warm));
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* 64 requests, zero reads: replies pile into the connection's
             out-queue and the socket buffer; reads from this connection
             suspend while output is pending (back-pressure), so the
             daemon must interleave flushing and reading as this client
             finally drains. Every reply must be byte-identical. *)
          let frame = W.encode run_req in
          send_all fd (String.concat "" (List.init 64 (fun _ -> frame)));
          for i = 1 to 64 do
            checks (Printf.sprintf "stalled reply %d byte-identical" i) warm (W.read_frame fd)
          done))

(* ------------------------------------------------------------------ *)
(* Hardening knobs                                                     *)

let test_idle_timeout_eviction () =
  with_daemon ~workers:1 ~capacity:4 ~idle_timeout_s:0.3 (fun _ port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Say nothing; the sweep must evict with a 408 frame, then FIN. *)
          (match W.read_frame fd with
          | frame -> checks "idle eviction tagged" "idle-timeout" (error_tag (T.json_of_string frame))
          | exception W.Closed -> Alcotest.fail "connection closed without a 408 frame");
          checkb "closed after 408" true
            (match W.read_frame fd with _ -> false | exception W.Closed -> true);
          (* The eviction is visible in stats (fresh connection, queried
             well inside its own 0.3 s budget). *)
          let stats =
            Server.Client.with_connection ~port (fun c -> Server.Client.request c "{\"op\":\"stats\"}")
          in
          match T.member "connections" (T.json_of_string stats) with
          | Some (T.Jobj fields) ->
              checkb "idle_timeouts counted" true
                (match List.assoc_opt "idle_timeouts" fields with
                | Some (T.Jint n) -> n >= 1
                | _ -> false)
          | _ -> Alcotest.fail "stats has no connections block"))

let test_rate_limit_429 () =
  with_daemon ~workers:1 ~capacity:4 ~rate_limit:2. (fun _ port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Burst capacity is one second of budget (2 tokens): of six
             instant pings the first two pass and the rest are answered
             429 in order — the connection survives. *)
          let ping = W.encode "{\"op\":\"ping\"}" in
          send_all fd (String.concat "" (List.init 6 (fun _ -> ping)));
          let replies = List.init 6 (fun _ -> T.json_of_string (W.read_frame fd)) in
          checkb "burst head passes" true (is_ok (List.nth replies 0));
          checkb "second passes" true (is_ok (List.nth replies 1));
          let limited =
            List.length (List.filter (fun j -> error_tag j = "rate-limited") replies)
          in
          checkb "tail rate-limited" true (limited >= 3);
          (* A second of refill restores service on the SAME connection. *)
          Thread.delay 1.1;
          send_all fd ping;
          checkb "recovers after refill" true (is_ok (T.json_of_string (W.read_frame fd)));
          let stats =
            Server.Client.with_connection ~port (fun c -> Server.Client.request c "{\"op\":\"stats\"}")
          in
          match T.member "connections" (T.json_of_string stats) with
          | Some (T.Jobj fields) ->
              checkb "rate_limited counted" true
                (match List.assoc_opt "rate_limited" fields with
                | Some (T.Jint n) -> n >= 3
                | _ -> false)
          | _ -> Alcotest.fail "stats has no connections block"))

let test_max_conns_shedding () =
  with_daemon ~workers:1 ~capacity:4 ~max_conns:2 (fun _ port ->
      let c1 = connect port and c2 = connect port in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ c1; c2 ])
        (fun () ->
          let ping fd =
            send_all fd (W.encode "{\"op\":\"ping\"}");
            is_ok (T.json_of_string (W.read_frame fd))
          in
          checkb "first admitted" true (ping c1);
          checkb "second admitted" true (ping c2);
          (* Over the cap: accept, one 503 conn-limit frame, close. *)
          let c3 = connect port in
          (match W.read_frame c3 with
          | frame -> checks "shed tagged" "conn-limit" (error_tag (T.json_of_string frame))
          | exception W.Closed -> Alcotest.fail "no 503 frame over the cap");
          checkb "shed conn closed" true
            (match W.read_frame c3 with _ -> false | exception W.Closed -> true);
          Unix.close c3;
          (* Freeing a slot re-opens admission (the loop may need a beat
             to observe the FIN). *)
          Unix.close c1;
          let rec admit_ping attempts =
            if attempts = 0 then false
            else begin
              let c4 = connect port in
              send_all c4 (W.encode "{\"op\":\"ping\"}");
              let ok =
                match W.read_frame c4 with
                | frame -> is_ok (T.json_of_string frame)
                | exception W.Closed -> false
              in
              (try Unix.close c4 with Unix.Unix_error _ -> ());
              ok
              ||
              (Thread.delay 0.02;
               admit_ping (attempts - 1))
            end
          in
          checkb "slot freed, admission recovers" true (admit_ping 50)))

(* ------------------------------------------------------------------ *)
(* FD_SETSIZE and EOF-driven cancellation                              *)

let test_beyond_fd_setsize () =
  (* 600 held connections put both sides' fd numbers past 1024 in this
     process (client + daemon share it). The old select(2)-based
     client_gone probe faulted on such fds and reported every client
     gone — computes came back 499 to a live, waiting client. The event
     loop's EOF flag has no such cliff: the compute must answer ok. *)
  with_daemon ~workers:1 ~capacity:4 (fun _ port ->
      let herd = Array.init 600 (fun _ -> connect port) in
      Fun.protect
        ~finally:(fun () ->
          Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) herd)
        (fun () ->
          let high = connect port in
          Fun.protect
            ~finally:(fun () -> try Unix.close high with Unix.Unix_error _ -> ())
            (fun () ->
              checkb "high fd number reached" true
                ((Obj.magic high : int) > 1024 (* Unix fds are ints *));
              send_all high
                (W.encode
                   (T.string_of_json
                      (T.Jobj
                         [
                           ("op", T.Jstr "run"); ("id", T.Jstr "claim31"); ("smoke", T.Jbool true);
                         ])));
              let j = T.json_of_string (W.read_frame high) in
              checkb "compute on fd>FD_SETSIZE answers ok (not 499)" true (is_ok j);
              (* The herd is still alive end to end. *)
              send_all herd.(599) (W.encode "{\"op\":\"ping\"}");
              checkb "herd tail still served" true
                (is_ok (T.json_of_string (W.read_frame herd.(599)))))))

let slow_simulate seed =
  Printf.sprintf
    "{\"op\":\"simulate\",\"protocol\":\"two-round-mm\",\"graph\":{\"kind\":\"gnp\",\"n\":2500,\"p\":0.5},\"seed\":%d}"
    seed

let test_eof_cancels_queued_compute () =
  (* One worker, so conn B's compute queues behind conn A's ~0.5 s run.
     B disconnects while queued; the event loop's EOF flag must reach the
     scheduler's cancellation probe and the job must be dropped, visible
     as queue.cancelled_drops in stats. (The old probe did this with a
     per-request MSG_PEEK; now it is one atomic read set at EOF.) *)
  with_daemon ~workers:1 ~capacity:8 (fun _ port ->
      let a = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close a with Unix.Unix_error _ -> ())
        (fun () ->
          send_all a (W.encode (slow_simulate 1));
          Thread.delay 0.1;
          (* A's job is on the worker now; B's will queue. *)
          let b = connect port in
          send_all b (W.encode (slow_simulate 2));
          Thread.delay 0.1;
          Unix.close b;
          (* A's reply arrives after its compute; B's job is then picked
             up, sees the cancellation flag, and is dropped unrun. *)
          checkb "conn A answered ok" true (is_ok (T.json_of_string (W.read_frame a)));
          let cancelled_drops () =
            let stats =
              Server.Client.with_connection ~port (fun c ->
                  Server.Client.request c "{\"op\":\"stats\"}")
            in
            match T.member "queue" (T.json_of_string stats) with
            | Some q -> (
                match T.member "cancelled_drops" q with Some (T.Jint n) -> n | _ -> -1)
            | None -> -1
          in
          let rec poll attempts =
            if cancelled_drops () >= 1 then true
            else if attempts = 0 then false
            else begin
              Thread.delay 0.05;
              poll (attempts - 1)
            end
          in
          checkb "queued compute cancelled at EOF" true (poll 40)))

(* ------------------------------------------------------------------ *)
(* The cache RPC, end to end, pinned                                   *)

let test_cache_rpc_golden () =
  with_daemon ~workers:1 ~capacity:4 (fun d port ->
      let service = Server.Daemon.service d in
      (* Fixed entries straight into the cache: the RPC's responses are
         then a pure function of this state, safe to pin byte-exactly. *)
      let cache = Server.Service.cache service in
      Server.Cache.add cache "exp:alpha:1" "{\"rows\":1}";
      Server.Cache.add cache "exp:alpha:2" "{\"rows\":22}";
      Server.Cache.add cache "exp:beta:1" "{\"rows\":333}";
      let got =
        Server.Client.with_connection ~port (fun c ->
            String.concat "\n"
              (List.map
                 (Server.Client.request c)
                 [
                   "{\"op\":\"cache\",\"action\":\"keys\",\"prefix\":\"exp:alpha:\"}";
                   "{\"op\":\"cache\",\"action\":\"keys\",\"prefix\":\"exp:\",\"limit\":2}";
                   "{\"op\":\"cache\",\"action\":\"invalidate\",\"prefix\":\"exp:alpha:\"}";
                   "{\"op\":\"cache\",\"action\":\"keys\",\"prefix\":\"exp:\"}";
                   "{\"op\":\"cache\",\"action\":\"stats\"}";
                   "{\"op\":\"cache\",\"action\":\"invalidate\"}";
                   "{\"op\":\"cache\",\"action\":\"nope\"}";
                 ])
            ^ "\n")
      in
      let expected =
        In_channel.with_open_bin
          (Filename.concat "golden" "cache_rpc_schema.txt")
          In_channel.input_all
      in
      if got <> expected then
        Alcotest.failf "cache RPC schema drifted\n--- golden ---\n%s--- got ---\n%s" expected got)

let () =
  Alcotest.run "daemon-engine"
    [
      ( "decoder",
        [
          Alcotest.test_case "reassembly across chunk sizes" `Quick test_decoder_reassembly;
          Alcotest.test_case "header defenses" `Quick test_decoder_defenses;
        ] );
      ( "connections",
        [
          Alcotest.test_case "slowloris byte-at-a-time" `Quick test_slowloris;
          Alcotest.test_case "pipelined requests answered in order" `Quick
            test_pipelining_in_order;
          Alcotest.test_case "stalled reader gets buffered writes" `Quick
            test_stalled_reader_buffered_writes;
        ] );
      ( "limits",
        [
          Alcotest.test_case "idle timeout evicts with 408" `Quick test_idle_timeout_eviction;
          Alcotest.test_case "rate limit answers 429 and recovers" `Slow test_rate_limit_429;
          Alcotest.test_case "max conns sheds with 503" `Quick test_max_conns_shedding;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "fds beyond FD_SETSIZE still serve" `Slow test_beyond_fd_setsize;
          Alcotest.test_case "EOF cancels queued compute" `Slow test_eof_cancels_queued_compute;
        ] );
      ( "cache-rpc",
        [ Alcotest.test_case "golden schema over TCP" `Quick test_cache_rpc_golden ] );
    ]

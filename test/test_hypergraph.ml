(* Tests for Dgraph.Hypergraph (the second cset instance), Hgen,
   Hmatching and Hmis. *)

module H = Dgraph.Hypergraph
module G = Dgraph.Graph
module HM = Dgraph.Hmatching
module HI = Dgraph.Hmis

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Construction and normalisation --- *)

let test_create_normalizes () =
  let h = H.create 6 [ [ 4; 2; 0 ]; [ 2; 0; 4 ]; [ 1; 5; 1 ]; [ 3; 2 ] ] in
  checki "n" 6 (H.n h);
  (* {0,2,4} twice collapses; {1,1,5} collapses its duplicate pin. *)
  checki "m dedups" 3 (H.m h);
  Alcotest.(check (array int)) "pins sorted" [| 0; 2; 4 |] (H.pins h 0);
  Alcotest.(check (array int)) "dup pin collapsed" [| 1; 5 |] (H.pins h 1);
  checki "arity" 3 (H.arity h 0);
  checki "max arity" 3 (H.max_arity h)

let test_rejects () =
  let raises name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "out of range" (fun () -> H.create 3 [ [ 0; 3 ] ]);
  raises "negative" (fun () -> H.create 3 [ [ -1; 2 ] ]);
  raises "singleton" (fun () -> H.create 3 [ [ 1 ] ]);
  raises "self-loop analogue" (fun () -> H.create 3 [ [ 2; 2 ] ])

let test_edge_order_lexicographic () =
  let h = H.create 5 [ [ 1; 2; 3 ]; [ 0; 4 ]; [ 1; 2 ]; [ 0; 1; 2 ] ] in
  let pin_lists = List.init (H.m h) (fun e -> Array.to_list (H.pins h e)) in
  Alcotest.(check (list (list int)))
    "lex order, shorter prefix first"
    [ [ 0; 1; 2 ]; [ 0; 4 ]; [ 1; 2 ]; [ 1; 2; 3 ] ]
    pin_lists

let test_incidence () =
  let h = H.create 5 [ [ 0; 1; 2 ]; [ 1; 2; 3 ]; [ 0; 4 ] ] in
  checki "degree 1" 2 (H.degree h 1);
  checki "degree 4" 1 (H.degree h 4);
  (* Frozen order: [0;1;2] < [0;4] < [1;2;3]. *)
  Alcotest.(check (array int)) "incident 0" [| 0; 1 |] (H.incident h 0);
  Alcotest.(check (array int)) "incident 2" [| 0; 2 |] (H.incident h 2);
  let via_iter = ref [] in
  H.iter_incident (fun e -> via_iter := e :: !via_iter) h 2;
  Alcotest.(check (list int)) "iter matches" [ 0; 2 ] (List.rev !via_iter);
  checki "fold counts" 2 (H.fold_incident (fun _ acc -> acc + 1) h 2 0);
  checkb "exists" true (H.exists_incident (fun e -> e = 2) h 2)

let test_find_edge () =
  let h = H.create 6 [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 2; 4; 5 ] ] in
  (* Frozen lex order: 0={0,1,2}, 1={2,4,5}, 2={3,4}. *)
  checkb "hit, any pin order" true (H.find_edge h [| 4; 2; 5 |] = Some 1);
  checkb "mem" true (H.mem_edge h [| 3; 4 |]);
  checkb "miss" true (H.find_edge h [| 0; 1 |] = None);
  checkb "miss superset" true (H.find_edge h [| 0; 1; 2; 3 |] = None)

let test_of_graph_embedding () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 5) 20 0.2 in
  let h = H.of_graph g in
  checki "same n" (G.n g) (H.n h);
  checki "same m" (G.m g) (H.m h);
  checkb "2-uniform" true (H.max_arity h <= 2);
  G.iter_edges (fun u v -> checkb "edge present" true (H.mem_edge h [| u; v |])) g;
  (* Graph CSR and hypergraph incidence agree vertex by vertex. *)
  for v = 0 to G.n g - 1 do
    checki "degree" (G.degree g v) (H.degree h v)
  done

let test_pins_owned_copy () =
  let h = H.create 4 [ [ 0; 1; 2 ] ] in
  let pins = H.pins h 0 in
  pins.(0) <- 99;
  Alcotest.(check (array int)) "fresh copy" [| 0; 1; 2 |] (H.pins h 0)

let test_equal () =
  let a = H.create 4 [ [ 0; 1 ]; [ 1; 2; 3 ] ] in
  let b = H.create 4 [ [ 3; 2; 1 ]; [ 1; 0 ]; [ 0; 1 ] ] in
  checkb "same edge set" true (H.equal a b);
  checkb "different n" false (H.equal a (H.create 5 [ [ 0; 1 ]; [ 1; 2; 3 ] ]));
  checkb "different edges" false (H.equal a (H.create 4 [ [ 0; 1 ] ]))

let test_builder () =
  let b = H.Builder.create ~capacity:1 5 in
  checki "n" 5 (H.Builder.n b);
  H.Builder.add_edge b [| 2; 1 |];
  H.Builder.add_edge b [| 1; 2 |];
  H.Builder.add_edge b [| 0; 3; 4 |];
  checki "length pre-dedup" 3 (H.Builder.length b);
  let h = H.Builder.freeze b in
  checkb "equals create" true (H.equal h (H.create 5 [ [ 1; 2 ]; [ 0; 3; 4 ] ]))

(* --- Generators --- *)

let test_gen_uniform () =
  let rng = Stdx.Prng.create 7 in
  let h = Dgraph.Hgen.uniform_random rng ~n:30 ~m:25 ~k:4 in
  checki "n" 30 (H.n h);
  checkb "m bounded" true (H.m h <= 25 && H.m h > 0);
  H.iter_edges (fun e -> checki "k-uniform" 4 (H.arity h e)) h

let test_gen_random_arity () =
  let rng = Stdx.Prng.create 8 in
  let h = Dgraph.Hgen.random_arity rng ~n:30 ~m:20 ~kmin:2 ~kmax:5 in
  H.iter_edges
    (fun e -> checkb "arity in range" true (H.arity h e >= 2 && H.arity h e <= 5))
    h

let test_gen_blocks () =
  let h = Dgraph.Hgen.blocks ~n:12 ~k:3 in
  checki "blocks" 4 (H.m h);
  checkb "greedy takes all" true (HM.size (HM.greedy h ()) = 4)

let test_gen_sunflower () =
  let h = Dgraph.Hgen.sunflower ~petals:5 ~core:2 ~petal:3 in
  checki "petals" 5 (H.m h);
  checki "n = core + petals*petal" 17 (H.n h);
  (* Any two petals share the core, so every maximal matching is one edge. *)
  checki "matching size 1" 1 (HM.size (HM.greedy h ()))

let test_gen_tight_path () =
  let h = Dgraph.Hgen.tight_path ~n:10 ~k:3 in
  checki "windows" 8 (H.m h);
  H.iter_edges (fun e -> checki "width" 3 (H.arity h e)) h

(* --- Hmatching --- *)

let test_matching_verdicts () =
  let h = H.create 8 [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 5; 6; 7 ]; [ 2; 3 ] ] in
  (* Frozen lex order: 0={0,1,2}, 1={2,3}, 2={3,4,5}, 3={5,6,7}. *)
  let v = HM.verify h [ 0; 2 ] in
  checkb "exists" true v.HM.edges_exist;
  checkb "disjoint" true v.HM.disjoint;
  (* {2,3} and {5,6,7} both meet a covered vertex. *)
  checkb "maximal" true v.HM.maximal;
  let v = HM.verify h [ 0; 1 ] in
  checkb "overlap caught" false v.HM.disjoint;
  let v = HM.verify h [ 99 ] in
  checkb "fabricated edge" false v.HM.edges_exist;
  let v = HM.verify h [ 0 ] in
  checkb "not maximal" false v.HM.maximal

let test_matching_greedy_random () =
  let rng = Stdx.Prng.create 21 in
  for seed = 1 to 15 do
    let n = 8 + Stdx.Prng.int rng 20 in
    let h =
      Dgraph.Hgen.random_arity (Stdx.Prng.create seed) ~n ~m:(2 * n) ~kmin:2
        ~kmax:(min 5 n)
    in
    let m = HM.greedy h () in
    checkb "greedy maximal" true (HM.is_maximal h m);
    let order = Stdx.Prng.permutation rng (H.m h) in
    checkb "permuted greedy maximal" true (HM.is_maximal h (HM.greedy h ~order ()))
  done

let test_augment_to_maximal () =
  let h = Dgraph.Hgen.blocks ~n:12 ~k:3 in
  let m = HM.augment_to_maximal h [ 1; 99; 1 ] in
  checkb "maximal after augment" true (HM.is_maximal h m);
  checkb "keeps the valid seed edge" true (List.mem 1 m)

(* --- Hmis --- *)

let test_mis_verdicts () =
  let h = H.create 5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  (* {0,1,3} contains no full hyperedge; every outside vertex blocked? *)
  let v = HI.verify h [ 0; 1; 3 ] in
  checkb "independent" true v.HI.independent;
  (* 2 completes {0,1,2}? yes (0,1 in S). 4 completes {3,4}? yes. *)
  checkb "maximal" true v.HI.maximal;
  let v = HI.verify h [ 2; 3 ] in
  checkb "contains edge {2,3}" false v.HI.independent;
  let v = HI.verify h [ 0; 1 ] in
  checkb "not maximal (4 free)" false v.HI.maximal

let test_mis_weak_sense () =
  (* In the weak sense a proper subset of a hyperedge is independent:
     {0,1} sits inside {0,1,2} without completing it. *)
  let h = H.create 3 [ [ 0; 1; 2 ] ] in
  checkb "proper subset ok" true (HI.is_independent h [ 0; 1 ]);
  checkb "full edge not ok" false (HI.is_independent h [ 0; 1; 2 ]);
  checkb "maximal" true (HI.is_maximal h [ 0; 1 ])

let test_mis_greedy_random () =
  let rng = Stdx.Prng.create 23 in
  for seed = 1 to 15 do
    let n = 8 + Stdx.Prng.int rng 20 in
    let h =
      Dgraph.Hgen.random_arity (Stdx.Prng.create (100 + seed)) ~n ~m:(2 * n) ~kmin:2
        ~kmax:(min 5 n)
    in
    let s = HI.greedy h () in
    checkb "greedy maximal" true (HI.is_maximal h s);
    let order = Stdx.Prng.permutation rng n in
    checkb "permuted greedy maximal" true (HI.is_maximal h (HI.greedy h ~order ()))
  done

let test_mis_coincides_with_graph_mis () =
  (* On the 2-uniform embedding, hypergraph MIS == graph MIS. *)
  let rng = Stdx.Prng.create 29 in
  for seed = 1 to 10 do
    let g = Dgraph.Gen.gnp (Stdx.Prng.create (200 + seed)) (10 + Stdx.Prng.int rng 20) 0.25 in
    let h = H.of_graph g in
    let s = Dgraph.Mis.greedy g () in
    checkb "graph MIS independent on h" true (HI.is_independent h s);
    checkb "graph MIS maximal on h" true (HI.is_maximal h s);
    let sh = HI.greedy h () in
    checkb "h MIS maximal on g" true (Dgraph.Mis.is_maximal g sh)
  done

let () =
  Alcotest.run "hypergraph"
    [
      ( "hypergraph",
        [
          Alcotest.test_case "create normalizes" `Quick test_create_normalizes;
          Alcotest.test_case "rejects" `Quick test_rejects;
          Alcotest.test_case "lexicographic order" `Quick test_edge_order_lexicographic;
          Alcotest.test_case "incidence" `Quick test_incidence;
          Alcotest.test_case "find_edge" `Quick test_find_edge;
          Alcotest.test_case "of_graph embedding" `Quick test_of_graph_embedding;
          Alcotest.test_case "pins owned copy" `Quick test_pins_owned_copy;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "builder" `Quick test_builder;
        ] );
      ( "generators",
        [
          Alcotest.test_case "uniform" `Quick test_gen_uniform;
          Alcotest.test_case "random arity" `Quick test_gen_random_arity;
          Alcotest.test_case "blocks" `Quick test_gen_blocks;
          Alcotest.test_case "sunflower" `Quick test_gen_sunflower;
          Alcotest.test_case "tight path" `Quick test_gen_tight_path;
        ] );
      ( "matching",
        [
          Alcotest.test_case "verdicts" `Quick test_matching_verdicts;
          Alcotest.test_case "greedy random" `Quick test_matching_greedy_random;
          Alcotest.test_case "augment to maximal" `Quick test_augment_to_maximal;
        ] );
      ( "mis",
        [
          Alcotest.test_case "verdicts" `Quick test_mis_verdicts;
          Alcotest.test_case "weak sense" `Quick test_mis_weak_sense;
          Alcotest.test_case "greedy random" `Quick test_mis_greedy_random;
          Alcotest.test_case "coincides with graph mis" `Quick test_mis_coincides_with_graph_mis;
        ] );
    ]

(* Tests for Report.Tabular: the three renderers (text alignment, CSV
   escaping, JSON-lines), schema validation, the shortest-round-trip float
   representation, and the bundled JSON parser (including the
   [row_of_json] round-trip contract the CI smoke check relies on). *)

module T = Report.Tabular

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

(* A small schema exercising every column feature: right/left alignment,
   a hidden [~text:false] column, fixed/scientific floats, bool, option. *)
let schema =
  [
    T.int_col ~width:4 "m";
    T.str_col ~header:"who" ~left:true ~width:6 "name";
    T.float_col ~width:8 ~digits:3 "rate";
    T.float_col ~sci:true ~width:9 ~digits:2 "bound";
    T.bool_col ~width:5 "ok";
    T.opt_col ~none:">max" (T.int_col ~width:6 "thresh");
    T.int_col ~text:false ~width:1 "ctx";
  ]

let rows =
  [
    [
      T.Int 5;
      T.Str "ab";
      T.Float 0.25;
      T.Float 1.5e-3;
      T.Bool true;
      T.Opt (Some (T.Int 64));
      T.Int 99;
    ];
    [
      T.Int 1000;
      T.Str "x,\"y\"";
      T.Float 2.0;
      T.Float 0.;
      T.Bool false;
      T.Opt None;
      T.Int 100;
    ];
  ]

let tbl = T.table ~preamble:[ ""; "== demo ==" ] ~footer:[ "bye" ] schema rows

let test_text () =
  (* Header and cells padded to width, joined by single spaces; the
     [~text:false] column is absent; Opt None renders its placeholder;
     preamble/footer lines pass through verbatim. Each expected cell is
     written out pre-padded so the snapshot stays readable. *)
  let line cells = String.concat " " cells ^ "\n" in
  let expected =
    "\n== demo ==\n"
    ^ line [ "   m"; "who   "; "    rate"; "    bound"; "   ok"; "thresh" ]
    ^ line [ "   5"; "ab    "; "   0.250"; " 1.50e-03"; " true"; "    64" ]
    ^ line [ "1000"; "x,\"y\" "; "   2.000"; " 0.00e+00"; "false"; "  >max" ]
    ^ "bye\n"
  in
  checks "text rendering" expected (T.to_text tbl)

let test_text_overflow () =
  (* Cells wider than the column keep their full content (Printf "%*d"
     semantics): alignment degrades, data never truncates. *)
  let t = T.table [ T.int_col ~width:2 "n" ] [ [ T.Int 12345 ] ] in
  checks "overflow keeps content" " n\n12345\n" (T.to_text t)

let test_csv () =
  (* Machine keys as header; every column including hidden ones; floats in
     round-trip form, not display form; Opt None is an empty cell; commas
     and quotes escaped per RFC 4180. *)
  let expected =
    "m,name,rate,bound,ok,thresh,ctx\n" ^ "5,ab,0.25,0.0015,true,64,99\n"
    ^ "1000,\"x,\"\"y\"\"\",2.0,0.0,false,,100\n"
  in
  checks "csv rendering" expected (T.to_csv tbl);
  checks "csv comment" ("# experiment: demo\n" ^ expected)
    (T.to_csv ~comment:"experiment: demo" tbl)

let test_json_lines () =
  let expected =
    "{\"tag\":\"t1\",\"m\":5,\"name\":\"ab\",\"rate\":0.25,\"bound\":0.0015,\"ok\":true,\"thresh\":64,\"ctx\":99}\n"
    ^ "{\"tag\":\"t1\",\"m\":1000,\"name\":\"x,\\\"y\\\"\",\"rate\":2.0,\"bound\":0.0,\"ok\":false,\"thresh\":null,\"ctx\":100}\n"
  in
  checks "json-lines rendering" expected (T.to_json_lines ~tag:("tag", "t1") tbl)

let test_json_nonfinite () =
  let t = T.table [ T.float_col ~width:6 ~digits:2 "x" ] [ [ T.Float nan ]; [ T.Float infinity ] ] in
  checks "non-finite floats emit null" "{\"x\":null}\n{\"x\":null}\n" (T.to_json_lines t)

let test_validate () =
  T.validate tbl;
  let raises f = match f () with () -> false | exception T.Type_error _ -> true in
  checkb "arity mismatch" true
    (raises (fun () -> T.validate (T.table schema [ [ T.Int 1 ] ])));
  checkb "type mismatch" true
    (raises (fun () ->
         T.validate (T.table [ T.int_col ~width:2 "n" ] [ [ T.Str "oops" ] ])));
  checkb "opt payload type mismatch" true
    (raises (fun () ->
         T.validate
           (T.table [ T.opt_col (T.int_col ~width:2 "n") ] [ [ T.Opt (Some (T.Str "s")) ] ])))

let test_float_repr () =
  checks "integral floats keep a dot" "1.0" (T.float_repr 1.0);
  checks "short decimals stay short" "0.25" (T.float_repr 0.25);
  List.iter
    (fun f ->
      checkb
        (Printf.sprintf "float_repr round-trips %h" f)
        true
        (float_of_string (T.float_repr f) = f))
    [ 0.1; 1. /. 3.; 4. *. atan 1.; 1e-300; 1e300; -0.; 1.5e-3; 123456789.123456789 ]

let test_parser () =
  let open T in
  checkb "scalar kinds" true
    (json_of_string "[null,true,false,3,-2.5,\"a\\nb\",1e3]"
    = Jarr [ Jnull; Jbool true; Jbool false; Jint 3; Jfloat (-2.5); Jstr "a\nb"; Jfloat 1e3 ]);
  checkb "nested object" true
    (json_of_string "{ \"a\" : { \"b\" : [ 1 , 2 ] } }"
    = Jobj [ ("a", Jobj [ ("b", Jarr [ Jint 1; Jint 2 ]) ]) ]);
  checkb "unicode escape" true (json_of_string "\"\\u00e9\"" = Jstr "\xc3\xa9");
  let fails s = match json_of_string s with _ -> false | exception Parse_error _ -> true in
  checkb "garbage fails" true (fails "{nope}");
  checkb "trailing garbage fails" true (fails "1 2");
  checkb "unterminated string fails" true (fails "\"abc");
  Alcotest.(check int)
    "json_lines skips blanks" 2
    (List.length (json_lines_of_string "{\"a\":1}\n\n  \n{\"a\":2}\n"))

let test_row_roundtrip () =
  (* The contract CI relies on: render a row, parse it back, map it onto
     the schema — identical values, with the tag field ignored. *)
  List.iter
    (fun row ->
      let line = T.json_of_row ~tag:("experiment", "demo") schema row in
      checkb "row round-trips through JSON" true
        (T.row_of_json schema (T.json_of_string line) = row))
    rows;
  let missing () = T.row_of_json schema (T.json_of_string "{\"m\":1}") in
  checkb "missing key fails" true
    (match missing () with _ -> false | exception T.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Property: the renderer and the parser are exact inverses on the JSON
   AST. [string_of_json] is what sketchd serves; a client parsing a
   response with [json_of_string] must see the value the server built. *)

let json_gen =
  let open QCheck.Gen in
  (* Full byte range: exercises '"', '\\', raw control chars (escaped as
     \uXXXX on the way out) and non-ASCII bytes (passed through). *)
  let any_string = string_size ~gen:char (0 -- 10) in
  let scalar =
    oneof
      [
        return T.Jnull;
        map (fun b -> T.Jbool b) bool;
        map (fun i -> T.Jint i) int;
        (* Non-finite floats render as null by design, so they cannot
           round-trip; keep the generator finite. *)
        map (fun f -> T.Jfloat (if Float.is_finite f then f else 0.)) float;
        map (fun s -> T.Jstr s) any_string;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               (1, map (fun l -> T.Jarr l) (list_size (0 -- 4) (self (n / 2))));
               ( 1,
                 map
                   (fun l -> T.Jobj l)
                   (list_size (0 -- 4) (pair any_string (self (n / 2)))) );
             ])

let json_arb = QCheck.make ~print:T.string_of_json json_gen

let json_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"string_of_json / json_of_string round-trip" ~count:1000 json_arb
         (fun j -> T.json_of_string (T.string_of_json j) = j));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"json_escape round-trips arbitrary bytes" ~count:1000
         QCheck.(string_gen QCheck.Gen.char)
         (fun s -> T.json_of_string ("\"" ^ T.json_escape s ^ "\"") = T.Jstr s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"float_repr survives the parser" ~count:1000
         QCheck.(map (fun f -> if Float.is_finite f then f else 0.) float)
         (fun f ->
           match T.json_of_string (T.string_of_json (T.Jfloat f)) with
           | T.Jfloat f' -> f' = f
           | T.Jint i -> float_of_int i = f
           | _ -> false));
  ]

let test_string_of_json_escapes () =
  let open T in
  checks "control chars" "\"a\\u0001b\"" (string_of_json (Jstr "a\x01b"));
  checks "named escapes" "\"\\\"\\\\\\n\\r\\t\"" (string_of_json (Jstr "\"\\\n\r\t"));
  checks "null and bools" "[null,true,false]" (string_of_json (Jarr [ Jnull; Jbool true; Jbool false ]));
  checks "nonfinite floats are null" "null" (string_of_json (Jfloat nan));
  checks "canonical object" "{\"a\":1,\"b\":[1.5,\"x\"]}"
    (string_of_json (Jobj [ ("a", Jint 1); ("b", Jarr [ Jfloat 1.5; Jstr "x" ]) ]));
  (* A \uXXXX escape parses to UTF-8 bytes, which re-render raw: one full
     cycle ends on a fixed point. *)
  let j = json_of_string "\"caf\\u00e9\"" in
  checkb "unicode fixed point" true (json_of_string (string_of_json j) = j);
  checkb "member finds fields" true
    (member "b" (Jobj [ ("a", Jint 1); ("b", Jbool true) ]) = Some (Jbool true));
  checkb "member on non-object" true (member "a" (Jint 3) = None)

let () =
  Alcotest.run "report"
    [
      ( "renderers",
        [
          Alcotest.test_case "text" `Quick test_text;
          Alcotest.test_case "text overflow" `Quick test_text_overflow;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "json-lines" `Quick test_json_lines;
          Alcotest.test_case "json non-finite" `Quick test_json_nonfinite;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "float_repr" `Quick test_float_repr;
        ] );
      ( "parser",
        [
          Alcotest.test_case "json_of_string" `Quick test_parser;
          Alcotest.test_case "row round-trip" `Quick test_row_roundtrip;
          Alcotest.test_case "string_of_json escapes" `Quick test_string_of_json_escapes;
        ] );
      ("json-properties", json_property_tests);
    ]

(* Tests for Report.Tabular: the three renderers (text alignment, CSV
   escaping, JSON-lines), schema validation, the shortest-round-trip float
   representation, and the bundled JSON parser (including the
   [row_of_json] round-trip contract the CI smoke check relies on). *)

module T = Report.Tabular

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

(* A small schema exercising every column feature: right/left alignment,
   a hidden [~text:false] column, fixed/scientific floats, bool, option. *)
let schema =
  [
    T.int_col ~width:4 "m";
    T.str_col ~header:"who" ~left:true ~width:6 "name";
    T.float_col ~width:8 ~digits:3 "rate";
    T.float_col ~sci:true ~width:9 ~digits:2 "bound";
    T.bool_col ~width:5 "ok";
    T.opt_col ~none:">max" (T.int_col ~width:6 "thresh");
    T.int_col ~text:false ~width:1 "ctx";
  ]

let rows =
  [
    [
      T.Int 5;
      T.Str "ab";
      T.Float 0.25;
      T.Float 1.5e-3;
      T.Bool true;
      T.Opt (Some (T.Int 64));
      T.Int 99;
    ];
    [
      T.Int 1000;
      T.Str "x,\"y\"";
      T.Float 2.0;
      T.Float 0.;
      T.Bool false;
      T.Opt None;
      T.Int 100;
    ];
  ]

let tbl = T.table ~preamble:[ ""; "== demo ==" ] ~footer:[ "bye" ] schema rows

let test_text () =
  (* Header and cells padded to width, joined by single spaces; the
     [~text:false] column is absent; Opt None renders its placeholder;
     preamble/footer lines pass through verbatim. Each expected cell is
     written out pre-padded so the snapshot stays readable. *)
  let line cells = String.concat " " cells ^ "\n" in
  let expected =
    "\n== demo ==\n"
    ^ line [ "   m"; "who   "; "    rate"; "    bound"; "   ok"; "thresh" ]
    ^ line [ "   5"; "ab    "; "   0.250"; " 1.50e-03"; " true"; "    64" ]
    ^ line [ "1000"; "x,\"y\" "; "   2.000"; " 0.00e+00"; "false"; "  >max" ]
    ^ "bye\n"
  in
  checks "text rendering" expected (T.to_text tbl)

let test_text_overflow () =
  (* Cells wider than the column keep their full content (Printf "%*d"
     semantics): alignment degrades, data never truncates. *)
  let t = T.table [ T.int_col ~width:2 "n" ] [ [ T.Int 12345 ] ] in
  checks "overflow keeps content" " n\n12345\n" (T.to_text t)

let test_csv () =
  (* Machine keys as header; every column including hidden ones; floats in
     round-trip form, not display form; Opt None is an empty cell; commas
     and quotes escaped per RFC 4180. *)
  let expected =
    "m,name,rate,bound,ok,thresh,ctx\n" ^ "5,ab,0.25,0.0015,true,64,99\n"
    ^ "1000,\"x,\"\"y\"\"\",2.0,0.0,false,,100\n"
  in
  checks "csv rendering" expected (T.to_csv tbl);
  checks "csv comment" ("# experiment: demo\n" ^ expected)
    (T.to_csv ~comment:"experiment: demo" tbl)

let test_json_lines () =
  let expected =
    "{\"tag\":\"t1\",\"m\":5,\"name\":\"ab\",\"rate\":0.25,\"bound\":0.0015,\"ok\":true,\"thresh\":64,\"ctx\":99}\n"
    ^ "{\"tag\":\"t1\",\"m\":1000,\"name\":\"x,\\\"y\\\"\",\"rate\":2.0,\"bound\":0.0,\"ok\":false,\"thresh\":null,\"ctx\":100}\n"
  in
  checks "json-lines rendering" expected (T.to_json_lines ~tag:("tag", "t1") tbl)

let test_json_nonfinite () =
  let t = T.table [ T.float_col ~width:6 ~digits:2 "x" ] [ [ T.Float nan ]; [ T.Float infinity ] ] in
  checks "non-finite floats emit null" "{\"x\":null}\n{\"x\":null}\n" (T.to_json_lines t)

let test_validate () =
  T.validate tbl;
  let raises f = match f () with () -> false | exception T.Type_error _ -> true in
  checkb "arity mismatch" true
    (raises (fun () -> T.validate (T.table schema [ [ T.Int 1 ] ])));
  checkb "type mismatch" true
    (raises (fun () ->
         T.validate (T.table [ T.int_col ~width:2 "n" ] [ [ T.Str "oops" ] ])));
  checkb "opt payload type mismatch" true
    (raises (fun () ->
         T.validate
           (T.table [ T.opt_col (T.int_col ~width:2 "n") ] [ [ T.Opt (Some (T.Str "s")) ] ])))

let test_float_repr () =
  checks "integral floats keep a dot" "1.0" (T.float_repr 1.0);
  checks "short decimals stay short" "0.25" (T.float_repr 0.25);
  List.iter
    (fun f ->
      checkb
        (Printf.sprintf "float_repr round-trips %h" f)
        true
        (float_of_string (T.float_repr f) = f))
    [ 0.1; 1. /. 3.; 4. *. atan 1.; 1e-300; 1e300; -0.; 1.5e-3; 123456789.123456789 ]

let test_parser () =
  let open T in
  checkb "scalar kinds" true
    (json_of_string "[null,true,false,3,-2.5,\"a\\nb\",1e3]"
    = Jarr [ Jnull; Jbool true; Jbool false; Jint 3; Jfloat (-2.5); Jstr "a\nb"; Jfloat 1e3 ]);
  checkb "nested object" true
    (json_of_string "{ \"a\" : { \"b\" : [ 1 , 2 ] } }"
    = Jobj [ ("a", Jobj [ ("b", Jarr [ Jint 1; Jint 2 ]) ]) ]);
  checkb "unicode escape" true (json_of_string "\"\\u00e9\"" = Jstr "\xc3\xa9");
  let fails s = match json_of_string s with _ -> false | exception Parse_error _ -> true in
  checkb "garbage fails" true (fails "{nope}");
  checkb "trailing garbage fails" true (fails "1 2");
  checkb "unterminated string fails" true (fails "\"abc");
  Alcotest.(check int)
    "json_lines skips blanks" 2
    (List.length (json_lines_of_string "{\"a\":1}\n\n  \n{\"a\":2}\n"))

let test_row_roundtrip () =
  (* The contract CI relies on: render a row, parse it back, map it onto
     the schema — identical values, with the tag field ignored. *)
  List.iter
    (fun row ->
      let line = T.json_of_row ~tag:("experiment", "demo") schema row in
      checkb "row round-trips through JSON" true
        (T.row_of_json schema (T.json_of_string line) = row))
    rows;
  let missing () = T.row_of_json schema (T.json_of_string "{\"m\":1}") in
  checkb "missing key fails" true
    (match missing () with _ -> false | exception T.Parse_error _ -> true)

let () =
  Alcotest.run "report"
    [
      ( "renderers",
        [
          Alcotest.test_case "text" `Quick test_text;
          Alcotest.test_case "text overflow" `Quick test_text_overflow;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "json-lines" `Quick test_json_lines;
          Alcotest.test_case "json non-finite" `Quick test_json_nonfinite;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "float_repr" `Quick test_float_repr;
        ] );
      ( "parser",
        [
          Alcotest.test_case "json_of_string" `Quick test_parser;
          Alcotest.test_case "row round-trip" `Quick test_row_roundtrip;
        ] );
    ]

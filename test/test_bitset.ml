(* Tests for Stdx.Bitset, checked against Stdlib int sets as the oracle. *)

module B = Stdx.Bitset
module IS = Set.Make (Int)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_basic () =
  let s = B.create 100 in
  checkb "initially empty" true (B.is_empty s);
  checki "capacity" 100 (B.capacity s);
  B.add s 0;
  B.add s 63;
  B.add s 99;
  checkb "mem 0" true (B.mem s 0);
  checkb "mem 63" true (B.mem s 63);
  checkb "mem 99" true (B.mem s 99);
  checkb "not mem 50" false (B.mem s 50);
  checki "cardinal" 3 (B.cardinal s);
  B.remove s 63;
  checkb "removed" false (B.mem s 63);
  checki "cardinal after remove" 2 (B.cardinal s)

let test_bounds () =
  let s = B.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (B.mem s (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of range") (fun () ->
      B.add s 10)

let test_iter_order () =
  let s = B.of_list 50 [ 30; 5; 17; 42; 0 ] in
  let seen = ref [] in
  B.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "increasing order" [ 0; 5; 17; 30; 42 ] (List.rev !seen)

let test_to_from_list () =
  let l = [ 1; 3; 5; 7 ] in
  Alcotest.(check (list int)) "roundtrip" l (B.to_list (B.of_list 8 l))

let test_union_inter () =
  let a = B.of_list 20 [ 1; 2; 3; 10 ] in
  let b = B.of_list 20 [ 2; 3; 4; 11 ] in
  checki "intersection size" 2 (B.inter_cardinal a b);
  B.union_into a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 10; 11 ] (B.to_list a)

let test_capacity_mismatch () =
  let a = B.create 10 and b = B.create 20 in
  Alcotest.check_raises "union mismatch" (Invalid_argument "Bitset.union_into: capacity mismatch")
    (fun () -> B.union_into a b)

let test_copy_clear_equal () =
  let a = B.of_list 30 [ 4; 9; 25 ] in
  let c = B.copy a in
  checkb "copies equal" true (B.equal a c);
  B.add c 5;
  checkb "copies independent" false (B.equal a c);
  B.clear c;
  checkb "cleared" true (B.is_empty c)

let test_word_boundaries () =
  (* Exercise indices around the 62-bit word boundary. *)
  let s = B.create 200 in
  List.iter (B.add s) [ 61; 62; 63; 123; 124; 185; 186 ];
  List.iter (fun i -> checkb (string_of_int i) true (B.mem s i)) [ 61; 62; 63; 123; 124; 185; 186 ];
  List.iter (fun i -> checkb (string_of_int i) false (B.mem s i)) [ 60; 64; 122; 125 ];
  checki "cardinal" 7 (B.cardinal s)

let oracle_gen =
  QCheck.(pair (int_range 1 300) (list (pair bool (int_bound 1000))))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"matches Set oracle" ~count:300 oracle_gen (fun (n, ops) ->
           let s = B.create n in
           let reference = ref IS.empty in
           List.iter
             (fun (add, raw) ->
               let i = raw mod n in
               if add then begin
                 B.add s i;
                 reference := IS.add i !reference
               end
               else begin
                 B.remove s i;
                 reference := IS.remove i !reference
               end)
             ops;
           B.cardinal s = IS.cardinal !reference
           && B.to_list s = IS.elements !reference
           && List.for_all (fun i -> B.mem s i = IS.mem i !reference) (List.init n (fun i -> i))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"inter_cardinal matches oracle" ~count:300
         QCheck.(triple (int_range 1 200) (list (int_bound 1000)) (list (int_bound 1000)))
         (fun (n, la, lb) ->
           let la = List.map (fun x -> x mod n) la and lb = List.map (fun x -> x mod n) lb in
           let a = B.of_list n la and b = B.of_list n lb in
           B.inter_cardinal a b
           = IS.cardinal (IS.inter (IS.of_list la) (IS.of_list lb))));
  ]

let () =
  Alcotest.run "bitset"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "to/from list" `Quick test_to_from_list;
          Alcotest.test_case "union/inter" `Quick test_union_inter;
          Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
          Alcotest.test_case "copy/clear/equal" `Quick test_copy_clear_equal;
          Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
        ] );
      ("bitset-properties", qcheck_tests);
    ]

(* Tests for Core.Claims: the executable Claim 3.1. *)

module HD = Core.Hard_dist
module C = Core.Claims
module Rs = Rsgraph.Rs_graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let sample ?(m = 10) seed = HD.sample (Rs.bipartite m) (Stdx.Prng.create seed)

let test_thresholds () =
  let dmm = sample 1 in
  let stats = C.check dmm () in
  let kr = float_of_int (stats.C.k * stats.C.r) in
  checkb "chernoff kr/3" true (abs_float (stats.C.chernoff_threshold -. (kr /. 3.)) < 1e-9);
  checkb "claim kr/4" true (abs_float (stats.C.claim_threshold -. (kr /. 4.)) < 1e-9);
  checkb "failure bound" true (abs_float (stats.C.failure_bound -. (2. ** (-.kr /. 10.))) < 1e-9)

let test_union_matches_survivors () =
  let dmm = sample 2 in
  let stats = C.check dmm () in
  checki "union = |surviving_special|" (List.length (HD.surviving_special dmm))
    stats.C.union_special

let test_matchings_are_maximal () =
  let dmm = sample 3 in
  List.iter
    (fun order ->
      let m = C.maximal_matching_under dmm order in
      checkb (C.order_name order) true (Dgraph.Matching.is_maximal dmm.HD.graph m))
    [ C.Lexicographic; C.Random 5; C.Random 99; C.Public_first ]

let test_public_first_prioritises () =
  (* Under Public_first, a unique-unique edge is only matched if no public
     edge could have blocked it: verify the order property by checking the
     produced matching leaves no public-touching edge addable before any
     retained unique-unique edge... operationally: the matching is maximal
     and contains at most as many unique-unique edges as lexicographic
     rarely more.  We check the weaker sanity: output differs from the
     empty set and is maximal. *)
  let dmm = sample 4 in
  let m = C.maximal_matching_under dmm C.Public_first in
  checkb "nonempty" true (m <> []);
  checkb "maximal" true (Dgraph.Matching.is_maximal dmm.HD.graph m)

let test_claim_holds_at_moderate_size () =
  (* At kr = 25*8 = 200 the failure bound is 2^-20: violations should not
     occur across a handful of samples. *)
  let rng = Stdx.Prng.create 7 in
  let rs = Rs.bipartite 25 in
  for _ = 1 to 5 do
    let dmm = HD.sample rs rng in
    let stats = C.check dmm () in
    checkb "claim holds" true (C.holds stats)
  done

let test_per_order_coverage () =
  let dmm = sample 5 in
  let stats = C.check dmm ~orders:[ C.Lexicographic; C.Public_first ] () in
  checki "one row per order" 2 (List.length stats.C.per_order);
  List.iter
    (fun (_, uu, maximal) ->
      checkb "maximal" true maximal;
      checkb "uu bounded by union" true (uu <= stats.C.union_special))
    stats.C.per_order

let test_unique_unique_upper_bound () =
  (* No maximal matching can contain more unique-unique special edges than
     survive; but it can match unique-unique pairs only along surviving
     special edges (unique vertices' only unique neighbours are their
     special partners). *)
  let dmm = sample 6 in
  let stats = C.check dmm () in
  List.iter
    (fun (_, uu, _) -> checkb "uu <= survivors" true (uu <= stats.C.union_special))
    stats.C.per_order

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"claim holds for m=25 (failure bound 2^-20)" ~count:10
         QCheck.(int_range 0 10000)
         (fun seed ->
           let dmm = HD.sample (Rs.bipartite 25) (Stdx.Prng.create seed) in
           C.holds (C.check dmm ~orders:[ C.Lexicographic; C.Public_first ] ())));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"uu edges are surviving special edges" ~count:10
         QCheck.(int_range 0 10000)
         (fun seed ->
           let dmm = HD.sample (Rs.bipartite 10) (Stdx.Prng.create seed) in
           let m = C.maximal_matching_under dmm (C.Random seed) in
           let uu = HD.unique_unique_edges dmm m in
           let survivors = List.map snd (HD.surviving_special dmm) in
           List.for_all (fun e -> List.mem e survivors) uu));
  ]

let () =
  Alcotest.run "claims"
    [
      ( "claim-3.1",
        [
          Alcotest.test_case "thresholds" `Quick test_thresholds;
          Alcotest.test_case "union matches survivors" `Quick test_union_matches_survivors;
          Alcotest.test_case "matchings maximal" `Quick test_matchings_are_maximal;
          Alcotest.test_case "public-first sane" `Quick test_public_first_prioritises;
          Alcotest.test_case "holds at moderate size" `Quick test_claim_holds_at_moderate_size;
          Alcotest.test_case "per-order coverage" `Quick test_per_order_coverage;
          Alcotest.test_case "uu upper bound" `Quick test_unique_unique_upper_bound;
        ] );
      ("claims-properties", qcheck_tests);
    ]

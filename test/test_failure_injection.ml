(* Failure injection: corrupt messages, starve budgets, violate promises —
   and verify the system detects or degrades rather than silently lying. *)

module Model = Sketchmodel.Model
module PC = Sketchmodel.Public_coins
module G = Dgraph.Graph
module W = Stdx.Bitbuf.Writer
module R = Stdx.Bitbuf.Reader

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Wrap a protocol so that a chosen player's message bits are flipped. *)
let corrupt_player ~victim ~flip_every (p : 'a Model.protocol) =
  {
    p with
    Model.name = p.Model.name ^ "+corruption";
    player =
      (fun view coins ->
        let honest = p.Model.player view coins in
        if view.Model.vertex <> victim then honest
        else begin
          let r = R.of_writer honest in
          let w = W.create () in
          let i = ref 0 in
          while R.remaining_bits r > 0 do
            let b = R.bit r in
            W.bit w (if !i mod flip_every = 0 then not b else b);
            incr i
          done;
          w
        end);
  }

let test_trivial_mm_with_corrupted_player () =
  (* A corrupted full-neighborhood message must fail LOUDLY (the referee
     hits Underflow / rejects out-of-range ids) or produce an output the
     ground-truth verifier can judge — never a silent crash-free lie that
     verification wrongly passes. *)
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 1) 20 0.3 in
  let detections = ref 0 in
  for victim = 0 to 9 do
    let corrupted = corrupt_player ~victim ~flip_every:2 Protocols.Trivial.mm in
    match Model.run corrupted g (PC.create (victim + 2)) with
    | exception R.Underflow -> incr detections
    | exception Invalid_argument _ -> incr detections
    | output, _ ->
        let verdict = Dgraph.Matching.verify g output in
        if not (verdict.Dgraph.Matching.edges_exist && verdict.Dgraph.Matching.maximal) then
          incr detections
  done;
  checkb (Printf.sprintf "corruption visible in %d/10 runs" !detections) true (!detections >= 5)

let test_agm_corruption_detected_by_checker () =
  (* Flip bits in one vertex's AGM sketch: decoding either fails loudly
     (fingerprints reject garbage, readers underflow) or yields a forest;
     wrong forests must be rejected by the ground-truth checker. *)
  let rng = Stdx.Prng.create 3 in
  let wrong = ref 0 and caught = ref 0 in
  for seed = 1 to 8 do
    let g = Dgraph.Gen.gnp rng 24 0.15 in
    let p = Agm.Spanning_forest.protocol ~n:24 () in
    let corrupted = corrupt_player ~victim:(seed mod 24) ~flip_every:7 p in
    match Model.run corrupted g (PC.create (seed * 5)) with
    | exception R.Underflow -> ()
    | exception Invalid_argument _ -> ()
    | forest, _ ->
        let truth = Dgraph.Components.spanning_forest g in
        if
          List.length forest <> List.length truth
          || not (List.for_all (fun (u, v) -> G.mem_edge g u v) forest)
        then begin
          incr wrong;
          if not (Dgraph.Components.is_spanning_forest g forest) then incr caught
        end
  done;
  checki "every wrong forest caught" !wrong !caught

let test_coloring_promise_violation () =
  (* The palette sketch assumes Delta is a promise; give the referee a
     smaller palette than the true degree and the output must either fail
     or still be proper within its (wrong) palette — never a silently
     improper coloring that is_proper passes. *)
  let g = Dgraph.Gen.complete 8 in
  (* list_size 2 over a K8: list coloring can't always succeed. *)
  let outcome, _ = Coloring.Palette.run g ~list_size:2 ~restarts:3 (PC.create 4) in
  (match outcome.Coloring.Palette.coloring with
  | None -> ()
  | Some colors ->
      (* If it claims success, the coloring must genuinely be proper. *)
      checkb "claimed coloring is proper" true (Coloring.Palette.is_proper g colors));
  checkb "ran" true true

let test_two_round_mm_under_adversarial_density () =
  (* Dense graphs stress the filtering claim: correctness must not
     degrade even if round-2 messages blow up. *)
  let g = Dgraph.Gen.complete 40 in
  let mm, stats = Protocols.Two_round_mm.run g (PC.create 5) in
  checkb "still maximal" true (Dgraph.Matching.is_maximal g mm);
  checkb "cost accounted" true (stats.Sketchmodel.Rounds.max_bits > 0)

let test_budget_starvation_graceful () =
  (* One-bit budgets must not crash anything and must produce empty or
     harmless output. *)
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 6) 30 0.3 in
  List.iter
    (fun b ->
      let p = Protocols.Sampled_mm.protocol ~budget_bits:b ~strategy:Protocols.Sampled_mm.Uniform in
      let out, stats = Model.run p g (PC.create 7) in
      checkb "within budget" true (stats.Model.max_bits <= b);
      let verdict = Dgraph.Matching.verify g out in
      checkb "never invalid edges" true verdict.Dgraph.Matching.edges_exist)
    [ 1; 2; 3; 7 ]

let test_reader_underflow_is_loud () =
  (* A referee over-reading a truncated message must hit Underflow, not
     read garbage. *)
  let w = W.create () in
  W.uvarint w 5;
  let r = R.of_writer w in
  ignore (R.uvarint r);
  Alcotest.check_raises "underflow raised" R.Underflow (fun () -> ignore (R.uvarint r))

let test_dmm_tamper_detection () =
  (* Mutating the kept matrix after construction must be visible through
     surviving_special (the structures stay consistent because make
     recomputes from inputs). *)
  let rs = Rsgraph.Rs_graph.bipartite 4 in
  let dmm = Core.Hard_dist.sample rs (Stdx.Prng.create 8) in
  let survivors = List.length (Core.Hard_dist.surviving_special dmm) in
  let kept' = Array.map Array.copy dmm.Core.Hard_dist.kept in
  Array.iter (fun row -> Array.fill row 0 (Array.length row) true) kept';
  let dmm' =
    Core.Hard_dist.make rs ~k:dmm.Core.Hard_dist.k ~j_star:dmm.Core.Hard_dist.j_star
      ~sigma:dmm.Core.Hard_dist.sigma ~kept:kept'
  in
  let survivors' = List.length (Core.Hard_dist.surviving_special dmm') in
  checki "all-kept instance has kr survivors" (dmm.Core.Hard_dist.k * Core.Hard_dist.r dmm)
    survivors';
  checkb "original had fewer" true (survivors < survivors')

let () =
  Alcotest.run "failure_injection"
    [
      ( "failure-injection",
        [
          Alcotest.test_case "corrupted trivial player" `Quick
            test_trivial_mm_with_corrupted_player;
          Alcotest.test_case "corrupted AGM caught" `Quick test_agm_corruption_detected_by_checker;
          Alcotest.test_case "coloring promise violation" `Quick test_coloring_promise_violation;
          Alcotest.test_case "two-round under density" `Quick
            test_two_round_mm_under_adversarial_density;
          Alcotest.test_case "budget starvation" `Quick test_budget_starvation_graceful;
          Alcotest.test_case "reader underflow loud" `Quick test_reader_underflow_is_loud;
          Alcotest.test_case "D_MM tamper detection" `Quick test_dmm_tamper_detection;
        ] );
    ]

(* The routing tier: qcheck properties of the consistent-hash ring
   (balance, exact key-stability under backend removal, successor
   coverage), fault injection against real sketchd backends (kill one,
   failover serves the byte-identical response; restart it, health
   recovery routes back), the proxy's local endpoints, and a golden
   snapshot of the aggregated cluster stats schema. *)

module T = Report.Tabular
module Ring = Server.Ring
module Health = Server.Health
module Proxy = Server.Proxy

let backends4 = [ "10.0.0.1:9001"; "10.0.0.2:9001"; "10.0.0.3:9001"; "10.0.0.4:9001" ]
let key salt i = Printf.sprintf "run?id=claim31&salt=%d&i=%d" salt i

(* --------------------------------------------------------------- *)
(* Ring properties                                                  *)

let ring_balance =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ring balance: shares near ideal over 2k keys" ~count:10
       QCheck.(int_range 0 1_000_000)
       (fun salt ->
         let r = Ring.create ~vnodes:160 backends4 in
         let counts = Hashtbl.create 4 in
         for i = 0 to 1999 do
           let b = Ring.route r (key salt i) in
           Hashtbl.replace counts b (1 + Option.value ~default:0 (Hashtbl.find_opt counts b))
         done;
         (* Ideal is 500 each; 160 vnodes keeps every share well inside a
            generous [25%, 200%]-of-ideal band. *)
         List.for_all
           (fun b ->
             let n = Option.value ~default:0 (Hashtbl.find_opt counts b) in
             n >= 125 && n <= 1000)
           backends4))

let ring_stability =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ring stability: removal re-routes only the removed shard"
       ~count:10
       QCheck.(pair (int_range 0 1_000_000) (int_range 0 3))
       (fun (salt, victim_ix) ->
         let r = Ring.create ~vnodes:64 backends4 in
         let victim = List.nth backends4 victim_ix in
         let r' = Ring.remove r victim in
         let moved = ref 0 in
         let stable = ref true in
         for i = 0 to 999 do
           let k = key salt i in
           let before = Ring.route r k in
           let after = Ring.route r' k in
           if before = victim then begin
             incr moved;
             if after = victim then stable := false
           end
           else if after <> before then stable := false
         done;
         (* Exactly the victim's keys moved — and that shard is roughly a
            quarter of the space, not all of it (the whole point of
            consistent hashing vs. mod-N). *)
         !stable && !moved > 0 && !moved < 700))

let ring_successors =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ring successors: head routes, covers every backend once"
       ~count:50
       QCheck.(int_range 0 1_000_000)
       (fun salt ->
         let r = Ring.create ~vnodes:16 backends4 in
         let k = key salt 0 in
         let s = Ring.successors r k in
         List.hd s = Ring.route r k
         && List.sort compare s = List.sort compare backends4))

let ring_hash_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ring hash: deterministic and non-negative" ~count:200
       QCheck.string (fun s -> Ring.hash_key s = Ring.hash_key s && Ring.hash_key s >= 0))

let test_ring_validation () =
  let rejects f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "empty list rejected" true (rejects (fun () -> Ring.create []));
  Alcotest.(check bool)
    "duplicates rejected" true
    (rejects (fun () -> Ring.create [ "a:1"; "a:1" ]));
  Alcotest.(check bool)
    "vnodes < 1 rejected" true
    (rejects (fun () -> Ring.create ~vnodes:0 [ "a:1" ]));
  Alcotest.(check bool)
    "removing the last backend rejected" true
    (rejects (fun () -> Ring.remove (Ring.create [ "a:1" ]) "a:1"))

(* --------------------------------------------------------------- *)
(* Helpers for live-backend tests                                   *)

let addr_of d = Printf.sprintf "127.0.0.1:%d" (Server.Daemon.port d)

let sim_payload seed =
  Printf.sprintf
    "{\"op\":\"simulate\",\"protocol\":\"two-round-mm\",\"graph\":{\"kind\":\"gnp\",\"n\":32,\"p\":0.2},\"seed\":%d}"
    seed

let is_ok response =
  match T.member "ok" (T.json_of_string response) with Some (T.Jbool true) -> true | _ -> false

let error_tag response =
  match T.member "error" (T.json_of_string response) with Some (T.Jstr e) -> Some e | _ -> None

(* A seed whose canonical cache key routes to [target] on [ring]. *)
let seed_routed_to ring target =
  let rec go s =
    if s > 5000 then Alcotest.fail "no seed routed to target backend in 5000 tries"
    else
      let k =
        match Server.Service.request_key (T.json_of_string (sim_payload s)) with
        | Some k -> k
        | None -> Alcotest.fail "simulate payload has no cache key"
      in
      if Ring.route ring k = target then s else go (s + 1)
  in
  go 0

(* A loopback port with nothing listening: bind, read it back, close. *)
let dead_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  Unix.close fd;
  port

(* --------------------------------------------------------------- *)
(* Fault injection: kill, failover, restart, recover                *)

let test_failover_byte_identical () =
  let a = Server.Daemon.start ~workers:1 ~capacity:8 () in
  let b = Server.Daemon.start ~workers:1 ~capacity:8 () in
  let b_port = Server.Daemon.port b in
  let p = Proxy.create ~backends:[ addr_of a; addr_of b ] () in
  Fun.protect ~finally:(fun () -> Proxy.close p) @@ fun () ->
  let seed = seed_routed_to (Proxy.ring p) (addr_of b) in
  let req () = (Proxy.handle p (sim_payload seed)).Server.Service.payload in
  let r1 = req () in
  Alcotest.(check bool) "initial request ok" true (is_ok r1);
  (* Kill the owning backend outright. *)
  Server.Daemon.stop ~abort_connections:true b;
  Server.Daemon.wait b;
  let r2 = req () in
  Alcotest.(check string) "failover response byte-identical" r1 r2;
  Alcotest.(check bool)
    "dead backend marked down" false
    (Health.healthy (Proxy.health p) (Printf.sprintf "127.0.0.1:%d" b_port));
  (* Restart a fresh daemon on the same port; a sweep must resurrect it. *)
  let b2 = Server.Daemon.start ~port:b_port ~workers:1 ~capacity:8 () in
  Fun.protect ~finally:(fun () ->
      (* Abort: the proxy's pooled idle connections would otherwise keep
         the backends' connection threads alive and [wait] blocked. *)
      Server.Daemon.stop ~abort_connections:true b2;
      Server.Daemon.wait b2;
      Server.Daemon.stop ~abort_connections:true a;
      Server.Daemon.wait a)
  @@ fun () ->
  Proxy.check_health p;
  Alcotest.(check bool)
    "restarted backend healthy again" true
    (Health.healthy (Proxy.health p) (Printf.sprintf "127.0.0.1:%d" b_port));
  let r3 = req () in
  Alcotest.(check string) "recovered route byte-identical" r1 r3;
  (* And the request really went to the restarted backend, not a stale
     pooled connection or the failover target. *)
  let b2_stats =
    (Server.Service.handle (Server.Daemon.service b2) "{\"op\":\"stats\"}").Server.Service
    .payload
  in
  let simulates =
    match
      T.member "requests" (T.json_of_string b2_stats)
      |> Option.map (T.member "by_op")
    with
    | Some (Some (T.Jobj ops)) -> (
        match List.assoc_opt "simulate" ops with Some (T.Jint n) -> n | _ -> 0)
    | _ -> 0
  in
  Alcotest.(check bool) "restarted backend served the request" true (simulates >= 1)

let test_all_backends_dead () =
  let p =
    Proxy.create
      ~backends:
        [
          Printf.sprintf "127.0.0.1:%d" (dead_port ());
          Printf.sprintf "127.0.0.1:%d" (dead_port ());
        ]
      ()
  in
  Fun.protect ~finally:(fun () -> Proxy.close p) @@ fun () ->
  let r = (Proxy.handle p (sim_payload 3)).Server.Service.payload in
  Alcotest.(check (option string)) "502 no-backend" (Some "no-backend") (error_tag r);
  (match T.member "code" (T.json_of_string r) with
  | Some (T.Jint 502) -> ()
  | _ -> Alcotest.fail "no-backend must carry code 502");
  (* Local endpoints keep answering with the whole cluster down. *)
  Alcotest.(check bool)
    "ping still local-ok" true
    (is_ok (Proxy.handle p "{\"op\":\"ping\"}").Server.Service.payload)

(* --------------------------------------------------------------- *)
(* Local endpoints                                                  *)

let test_ping_role () =
  let p = Proxy.create ~backends:[ "127.0.0.1:1" ] () in
  Fun.protect ~finally:(fun () -> Proxy.close p) @@ fun () ->
  let j = T.json_of_string (Proxy.handle p "{\"op\":\"ping\"}").Server.Service.payload in
  Alcotest.(check bool) "ok" true (T.member "ok" j = Some (T.Jbool true));
  Alcotest.(check bool) "role=proxy" true (T.member "role" j = Some (T.Jstr "proxy"));
  Alcotest.(check bool)
    "version present" true
    (T.member "version" j = Some (T.Jstr Stdx.Version.current))

let test_cluster_rpc () =
  let a = Server.Daemon.start ~workers:1 ~capacity:8 () in
  Fun.protect ~finally:(fun () ->
      Server.Daemon.stop a;
      Server.Daemon.wait a)
  @@ fun () ->
  let dead = Printf.sprintf "127.0.0.1:%d" (dead_port ()) in
  let p = Proxy.create ~backends:[ addr_of a; dead ] () in
  Fun.protect ~finally:(fun () -> Proxy.close p) @@ fun () ->
  Proxy.check_health p;
  let j = T.json_of_string (Proxy.handle p "{\"op\":\"cluster\"}").Server.Service.payload in
  Alcotest.(check bool) "ok" true (T.member "ok" j = Some (T.Jbool true));
  match T.member "backends" j with
  | Some (T.Jarr [ live; down ]) ->
      Alcotest.(check bool)
        "live backend healthy" true
        (T.member "healthy" live = Some (T.Jbool true));
      Alcotest.(check bool)
        "dead backend unhealthy" true
        (T.member "healthy" down = Some (T.Jbool false));
      Alcotest.(check bool)
        "dead backend carries last_error" true
        (match T.member "last_error" down with Some (T.Jstr _) -> true | _ -> false)
  | _ -> Alcotest.fail "cluster response must list both backends in order"

let test_stats_aggregation_live () =
  let a = Server.Daemon.start ~workers:1 ~capacity:8 () in
  let b = Server.Daemon.start ~workers:1 ~capacity:8 () in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun d ->
          Server.Daemon.stop d;
          Server.Daemon.wait d)
        [ a; b ])
  @@ fun () ->
  let p = Proxy.create ~backends:[ addr_of a; addr_of b ] () in
  Fun.protect ~finally:(fun () -> Proxy.close p) @@ fun () ->
  (* Spread a few simulates across both shards, then aggregate. *)
  for seed = 0 to 9 do
    let r = (Proxy.handle p (sim_payload seed)).Server.Service.payload in
    Alcotest.(check bool) "simulate ok" true (is_ok r)
  done;
  let j = T.json_of_string (Proxy.handle p "{\"op\":\"stats\"}").Server.Service.payload in
  Alcotest.(check bool) "ok" true (T.member "ok" j = Some (T.Jbool true));
  let int_at path =
    List.fold_left
      (fun acc k -> match acc with Some v -> T.member k v | None -> None)
      (Some j) path
    |> function
    | Some (T.Jint n) -> n
    | _ -> -1
  in
  Alcotest.(check int) "cluster size" 2 (int_at [ "cluster"; "backends" ]);
  Alcotest.(check int) "all healthy" 2 (int_at [ "cluster"; "healthy" ]);
  Alcotest.(check int) "proxy forwarded all" 10 (int_at [ "proxy"; "forwarded" ]);
  (* The `stats` probes themselves also count on the backends, so the
     cluster-wide total is at least the 10 forwarded simulates. *)
  Alcotest.(check bool) "summed totals" true (int_at [ "requests"; "total" ] >= 10);
  (match T.member "backends" j with
  | Some (T.Jarr ([ _; _ ] as bs)) ->
      List.iter
        (fun bj ->
          Alcotest.(check bool)
            "per-backend stats present" true
            (match T.member "requests_total" bj with Some (T.Jint _) -> true | _ -> false))
        bs
  | _ -> Alcotest.fail "stats must carry one entry per backend");
  (* Both shards saw work: the ring spread 10 seeds over 2 backends. *)
  Alcotest.(check bool)
    "cache misses across cluster" true
    (int_at [ "cache"; "misses" ] >= 10)

(* --------------------------------------------------------------- *)
(* Golden: aggregated cluster stats schema                          *)

let test_golden_cluster_stats () =
  let m =
    {
      Server.Metrics.uptime_s = 12.5;
      total = 42;
      errors = 3;
      by_op = [ ("ping", 2); ("run", 30); ("simulate", 10) ];
      latency_count = 42;
      p50_ms = 0.5;
      p90_ms = 1.25;
      p99_ms = 4.;
      max_ms = 9.;
      conns_open = 1;
      conns_accepted = 5;
      conns_rejected = 0;
      idle_timeouts = 0;
      rate_limited = 0;
    }
  in
  let backend_stats uptime total =
    T.json_of_string
      (Printf.sprintf
         "{\"ok\":true,\"op\":\"stats\",\"version\":\"VERSION\",\"uptime_s\":%s,\"requests\":{\"total\":%d,\"errors\":1,\"by_op\":{\"ping\":4,\"run\":%d}},\"cache\":{\"hits\":7,\"misses\":5,\"entries\":5,\"bytes\":2048,\"evictions\":0},\"queue\":{\"depth\":0,\"capacity\":16,\"workers\":2,\"shed\":1,\"deadline_drops\":0,\"cancelled_drops\":0},\"latency_ms\":{\"count\":%d,\"p50\":0.25,\"p90\":1.5,\"p99\":2.5,\"max\":3.5}}"
         (T.float_repr uptime) total (total - 4) total)
  in
  let got =
    Proxy.render_stats ~version:"VERSION" ~uptime_s:12.5 ~m ~forwarded:40 ~failovers:2
      ~retries:1 ~shed_relayed:0
      ~backends:
        [
          ("127.0.0.1:7001", true, Some (backend_stats 11.5 20));
          ("127.0.0.1:7002", true, Some (backend_stats 10.5 18));
          ("127.0.0.1:7003", false, None);
        ]
    ^ "\n"
  in
  let expected =
    In_channel.with_open_bin
      (Filename.concat "golden" "cluster_stats_schema.txt")
      In_channel.input_all
  in
  if got <> expected then
    Alcotest.failf "cluster stats schema drifted\n--- golden ---\n%s--- got ---\n%s" expected
      got

let () =
  Alcotest.run "proxy"
    [
      ( "ring",
        [
          ring_balance;
          ring_stability;
          ring_successors;
          ring_hash_deterministic;
          Alcotest.test_case "create/remove validation" `Quick test_ring_validation;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "ping answers locally with role" `Quick test_ping_role;
          Alcotest.test_case "all backends dead is 502" `Quick test_all_backends_dead;
          Alcotest.test_case "cluster rpc reports health" `Quick test_cluster_rpc;
          Alcotest.test_case "kill, failover byte-identical, restart, recover" `Quick
            test_failover_byte_identical;
          Alcotest.test_case "aggregated stats over live backends" `Quick
            test_stats_aggregation_live;
          Alcotest.test_case "golden cluster stats schema" `Quick test_golden_cluster_stats;
        ] );
    ]

(* Tests for the schema-driven columnar incidence store (lib/cset):
   schema validation, the Builder == freeze_keys equivalence on the
   packed (graph-shaped) pipeline, the lexicographic pipeline for
   variable-arity rows, the incidence-index invariants, and the radix
   sort's equivalence to [Array.sort]. *)

module Sch = Cset.Schema
module S = Cset.Store
module C = Cset.Columnar

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let raises_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* A graph-shaped schema: two fixed indexed columns edge -> vertex. The
   store packs edge rows into u*n + v keys, exactly the historical graph
   pipeline. One schema value for the whole file: [S.equal] requires
   physically-equal schemas. *)
let graph_schema =
  Sch.make ~parts:[ "vertex"; "edge" ]
    ~morphisms:
      [
        Sch.fixed ~indexed:true ~dom:"edge" ~cod:"vertex" "src";
        Sch.fixed ~indexed:true ~dom:"edge" ~cod:"vertex" "dst";
      ]

let edge_part = Sch.part_index graph_schema "edge"
let src_m = Sch.morphism_index graph_schema "src"
let dst_m = Sch.morphism_index graph_schema "dst"

(* A hypergraph-shaped schema: one variable indexed column. *)
let pins_schema =
  Sch.make ~parts:[ "vertex"; "edge" ]
    ~morphisms:[ Sch.variable ~indexed:true ~dom:"edge" ~cod:"vertex" "pins" ]

let pins_m = Sch.morphism_index pins_schema "pins"

(* --- Schema validation --- *)

let test_schema_rejects () =
  raises_invalid "duplicate part" (fun () ->
      Sch.make ~parts:[ "a"; "a" ] ~morphisms:[]);
  raises_invalid "unknown dom" (fun () ->
      Sch.make ~parts:[ "a" ] ~morphisms:[ Sch.fixed ~dom:"b" ~cod:"a" "f" ]);
  raises_invalid "duplicate morphism name" (fun () ->
      Sch.make ~parts:[ "a"; "b" ]
        ~morphisms:[ Sch.fixed ~dom:"b" ~cod:"a" "f"; Sch.fixed ~dom:"b" ~cod:"a" "f" ]);
  raises_invalid "two variable columns" (fun () ->
      Sch.make ~parts:[ "a"; "b" ]
        ~morphisms:
          [ Sch.variable ~dom:"b" ~cod:"a" "p"; Sch.variable ~dom:"b" ~cod:"a" "q" ]);
  raises_invalid "fixed after variable" (fun () ->
      Sch.make ~parts:[ "a"; "b" ]
        ~morphisms:[ Sch.variable ~dom:"b" ~cod:"a" "p"; Sch.fixed ~dom:"b" ~cod:"a" "f" ])

let test_schema_accessors () =
  checki "parts" 2 (Sch.n_parts graph_schema);
  checki "morphisms" 2 (Sch.n_morphisms graph_schema);
  checkb "edge is relation part" true (Sch.is_relation_part graph_schema edge_part);
  checkb "vertex is object part" false
    (Sch.is_relation_part graph_schema (Sch.part_index graph_schema "vertex"));
  Alcotest.(check (array int)) "row columns" [| src_m; dst_m |]
    (Sch.morphisms_of_part graph_schema edge_part);
  checkb "no variable column" true (Sch.variable_morphism graph_schema edge_part = None);
  checkb "pins is variable" true (Sch.variable_morphism pins_schema 1 = Some pins_m)

(* --- Builder validation --- *)

let test_builder_rejects () =
  let b = S.Builder.create graph_schema ~counts:[| 4; 0 |] in
  raises_invalid "row width" (fun () -> S.Builder.add_row b ~part:edge_part [| 1 |]);
  raises_invalid "value range" (fun () -> S.Builder.add_row b ~part:edge_part [| 0; 4 |]);
  raises_invalid "negative value" (fun () -> S.Builder.add_row b ~part:edge_part [| -1; 0 |]);
  raises_invalid "packed key range" (fun () -> S.Builder.add_packed b ~part:edge_part 16);
  raises_invalid "object part has no rows" (fun () -> S.Builder.add_row b ~part:0 [| 0 |]);
  let vb = S.Builder.create pins_schema ~counts:[| 4; 0 |] in
  raises_invalid "variable part is not packed" (fun () -> S.Builder.add_packed vb ~part:1 0)

(* --- The packed pipeline --- *)

let random_rows rng n count =
  List.init count (fun _ -> (Stdx.Prng.int rng n, Stdx.Prng.int rng n))

let freeze_via_builder n rows =
  let b = S.Builder.create graph_schema ~counts:[| n; 0 |] in
  List.iter (fun (u, v) -> S.Builder.add_row b ~part:edge_part [| u; v |]) rows;
  S.Builder.freeze b

let freeze_via_keys n rows =
  let keys = Array.of_list (List.map (fun (u, v) -> (u * n) + v) rows) in
  S.freeze_keys graph_schema ~part:edge_part ~counts:[| n; 0 |] keys (Array.length keys)

let test_packed_pipeline () =
  let rows = [ (3, 1); (0, 2); (3, 1); (1, 1); (0, 0); (2, 3) ] in
  let c = freeze_via_builder 4 rows in
  checki "dedup count" 5 (S.count c edge_part);
  let src = S.fixed_column c src_m and dst = S.fixed_column c dst_m in
  (* Rows come out sorted by packed key = row-major (src, dst) order. *)
  Alcotest.(check (array int)) "src sorted" [| 0; 0; 1; 2; 3 |] src;
  Alcotest.(check (array int)) "dst" [| 0; 2; 1; 3; 1 |] dst;
  checkb "keys path agrees" true (S.equal c (freeze_via_keys 4 rows))

let test_freeze_keys_rejects () =
  raises_invalid "variable schema is not packable" (fun () ->
      S.freeze_keys pins_schema ~part:1 ~counts:[| 4; 0 |] [| 0 |] 1)

(* --- Incidence invariants --- *)

(* The incidence CSR of an indexed morphism must list, for every codomain
   element, exactly the domain rows holding it, ascending. *)
let incidence_matches_column c ~cod_count ~morphism ~holds =
  let row, dom_ids = S.incidence c morphism in
  checki "row length" (cod_count + 1) (Array.length row);
  let ok = ref true in
  for v = 0 to cod_count - 1 do
    let expect = ref [] in
    for e = S.count c edge_part - 1 downto 0 do
      if holds e v then expect := e :: !expect
    done;
    let got = Array.to_list (Array.sub dom_ids row.(v) (row.(v + 1) - row.(v))) in
    if got <> !expect then ok := false
  done;
  !ok

let test_incidence_fixed () =
  let rng = Stdx.Prng.create 11 in
  for _ = 1 to 20 do
    let n = 1 + Stdx.Prng.int rng 8 in
    let rows = random_rows rng n (Stdx.Prng.int rng 30) in
    let c = freeze_via_builder n rows in
    let src = S.fixed_column c src_m and dst = S.fixed_column c dst_m in
    checkb "src incidence" true
      (incidence_matches_column c ~cod_count:n ~morphism:src_m ~holds:(fun e v -> src.(e) = v));
    checkb "dst incidence" true
      (incidence_matches_column c ~cod_count:n ~morphism:dst_m ~holds:(fun e v -> dst.(e) = v))
  done

(* --- The lexicographic (variable-arity) pipeline --- *)

let freeze_pins n rows =
  let b = S.Builder.create pins_schema ~counts:[| n; 0 |] in
  List.iter (fun pins -> S.Builder.add_row b ~part:1 (Array.of_list pins)) rows;
  S.Builder.freeze b

let test_variable_pipeline () =
  (* Duplicates collapse; order is lexicographic with a shorter prefix
     first; the empty row is a legal row for the raw store. *)
  let c = freeze_pins 5 [ [ 1; 2; 4 ]; [ 0 ]; [ 1; 2 ]; [ 1; 2; 4 ]; [] ] in
  checki "dedup count" 4 (S.count c 1);
  let row, vals = S.segments c pins_m in
  let seg e = Array.to_list (Array.sub vals row.(e) (row.(e + 1) - row.(e))) in
  Alcotest.(check (list (list int)))
    "lex order, shorter prefix first"
    [ []; [ 0 ]; [ 1; 2 ]; [ 1; 2; 4 ] ]
    (List.init 4 seg)

let test_incidence_segments () =
  let rng = Stdx.Prng.create 13 in
  for _ = 1 to 20 do
    let n = 2 + Stdx.Prng.int rng 8 in
    let rows =
      List.init (Stdx.Prng.int rng 15) (fun _ ->
          (* Sorted distinct pins, as a hypergraph would feed. *)
          List.filter (fun _ -> Stdx.Prng.int rng 3 = 0) (List.init n Fun.id))
    in
    let c = freeze_pins n rows in
    let row, vals = S.segments c pins_m in
    let holds e v =
      let found = ref false in
      for j = row.(e) to row.(e + 1) - 1 do
        if vals.(j) = v then found := true
      done;
      !found
    in
    checkb "segment incidence" true
      (incidence_matches_column c ~cod_count:n ~morphism:pins_m ~holds)
  done

(* --- unsafe_of_columns --- *)

let test_unsafe_of_columns () =
  let rows = [ (3, 1); (0, 2); (1, 1); (0, 0); (2, 3) ] in
  let c = freeze_via_builder 4 rows in
  let adopted =
    S.unsafe_of_columns graph_schema ~counts:[| 4; S.count c edge_part |]
      ~columns:
        [| S.Fixed_col (S.fixed_column c src_m); S.Fixed_col (S.fixed_column c dst_m) |]
  in
  checkb "adoption round-trips" true (S.equal c adopted);
  (* Incidence CSRs are rebuilt even on the trusted path. *)
  let src = S.fixed_column adopted src_m in
  checkb "incidence rebuilt" true
    (incidence_matches_column adopted ~cod_count:4 ~morphism:src_m ~holds:(fun e v ->
         src.(e) = v));
  raises_invalid "shape mismatch" (fun () ->
      S.unsafe_of_columns graph_schema ~counts:[| 4; 1 |]
        ~columns:[| S.Fixed_col [| 0 |]; S.Seg_col ([| 0; 1 |], [| 0 |]) |])

(* --- Trace spans --- *)

let test_freeze_spans () =
  Stdx.Trace.enable ();
  Stdx.Trace.reset ();
  Fun.protect ~finally:Stdx.Trace.disable (fun () ->
      ignore (freeze_via_builder 4 [ (0, 1); (2, 3) ]);
      let names = List.map (fun e -> e.Stdx.Trace.name) (Stdx.Trace.dump ()) in
      List.iter
        (fun s -> checkb s true (List.mem s names))
        [ "cset.sort"; "cset.dedup"; "cset.csr-fill" ];
      Stdx.Trace.reset ();
      let b = S.Builder.create graph_schema ~counts:[| 4; 0 |] in
      S.Builder.add_row b ~part:edge_part [| 0; 1 |];
      ignore (S.Builder.freeze ~span_prefix:"zzz" b);
      let names = List.map (fun e -> e.Stdx.Trace.name) (Stdx.Trace.dump ()) in
      checkb "prefix respected" true (List.mem "zzz.sort" names))

(* --- Columnar primitives --- *)

let test_sort_keys_small_and_large () =
  let rng = Stdx.Prng.create 17 in
  List.iter
    (fun len ->
      let a = Array.init len (fun _ -> Stdx.Prng.int rng 1_000_000) in
      let b = Array.copy a in
      C.sort_keys a;
      Array.sort compare b;
      Alcotest.(check (array int)) (Printf.sprintf "len %d" len) b a)
    [ 0; 1; 7; 511; 512; 513; 5000 ]

let test_radix_matches_array_sort () =
  let rng = Stdx.Prng.create 19 in
  for _ = 1 to 10 do
    (* Mixed magnitudes force differing radix pass counts. *)
    let len = 512 + Stdx.Prng.int rng 2000 in
    let bits = 1 + Stdx.Prng.int rng 50 in
    let a = Array.init len (fun _ -> Stdx.Prng.int rng (1 lsl bits)) in
    let b = Array.copy a in
    C.radix_sort_nonneg a;
    Array.sort compare b;
    Alcotest.(check (array int)) "radix == Array.sort" b a
  done

let test_distinct_helpers () =
  let a = [| 0; 0; 1; 3; 3; 3; 9 |] in
  checki "count_distinct" 4 (C.count_distinct a);
  let seen = ref [] in
  C.iter_distinct (fun v -> seen := v :: !seen) a;
  Alcotest.(check (list int)) "iter_distinct" [ 0; 1; 3; 9 ] (List.rev !seen);
  checki "empty" 0 (C.count_distinct [||])

let test_neighbor_csr () =
  (* Normalised, lexicographically sorted edge columns of a 5-path plus
     a chord. *)
  let eu = [| 0; 0; 1; 2; 3 |] and ev = [| 1; 2; 2; 3; 4 |] in
  let row, col = C.neighbor_csr ~n:5 ~eu ~ev in
  Alcotest.(check (array int)) "row_start" [| 0; 2; 4; 7; 9; 10 |] row;
  Alcotest.(check (array int)) "cols" [| 1; 2; 0; 2; 0; 1; 3; 2; 4; 3 |] col

(* --- qcheck: every construction path lands on the same frozen store --- *)

let rows_gen =
  QCheck.make
    ~print:(fun (n, rows) -> Printf.sprintf "n=%d rows=%d" n (List.length rows))
    QCheck.Gen.(
      int_range 1 16 >>= fun n ->
      list_size (int_range 0 60) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun rows -> return (n, rows))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Builder.freeze equals freeze_keys" ~count:300 rows_gen
         (fun (n, rows) -> S.equal (freeze_via_builder n rows) (freeze_via_keys n rows)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"add_packed equals add_row" ~count:200 rows_gen
         (fun (n, rows) ->
           let b = S.Builder.create graph_schema ~counts:[| n; 0 |] in
           List.iter (fun (u, v) -> S.Builder.add_packed b ~part:edge_part ((u * n) + v)) rows;
           S.equal (S.Builder.freeze b) (freeze_via_builder n rows)));
  ]

let () =
  Alcotest.run "cset"
    [
      ( "schema",
        [
          Alcotest.test_case "rejects" `Quick test_schema_rejects;
          Alcotest.test_case "accessors" `Quick test_schema_accessors;
        ] );
      ( "store",
        [
          Alcotest.test_case "builder rejects" `Quick test_builder_rejects;
          Alcotest.test_case "packed pipeline" `Quick test_packed_pipeline;
          Alcotest.test_case "freeze_keys rejects" `Quick test_freeze_keys_rejects;
          Alcotest.test_case "incidence of fixed columns" `Quick test_incidence_fixed;
          Alcotest.test_case "variable pipeline" `Quick test_variable_pipeline;
          Alcotest.test_case "incidence of segments" `Quick test_incidence_segments;
          Alcotest.test_case "unsafe_of_columns" `Quick test_unsafe_of_columns;
          Alcotest.test_case "freeze spans" `Quick test_freeze_spans;
        ] );
      ( "columnar",
        [
          Alcotest.test_case "sort_keys all sizes" `Quick test_sort_keys_small_and_large;
          Alcotest.test_case "radix == Array.sort" `Quick test_radix_matches_array_sort;
          Alcotest.test_case "distinct helpers" `Quick test_distinct_helpers;
          Alcotest.test_case "neighbor csr" `Quick test_neighbor_csr;
        ] );
      ("pipeline-properties", qcheck_tests);
    ]

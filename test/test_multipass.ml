(* Tests for Multipass: the r-round referee engine (and its byte-identity
   with the fixed one- and two-round engines), the frontier prefix MIS
   family, the Luby priority variants, and multi-pass streaming matching. *)

module Model = Sketchmodel.Model
module Rounds2 = Sketchmodel.Rounds
module MP = Multipass.Rounds
module PC = Sketchmodel.Public_coins
module G = Dgraph.Graph
module S = Streams.Stream

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkis = Alcotest.(check (list int))

let graphs seed =
  let rng = Stdx.Prng.create seed in
  [
    Dgraph.Gen.gnp rng 20 0.2;
    Dgraph.Gen.gnp rng 32 0.1;
    Dgraph.Gen.cycle 15;
    Dgraph.Gen.complete 8;
    Dgraph.Gen.star 6;
  ]

(* ---- Regression: r = 1 embedding is byte-identical to Model.run ---- *)

let test_of_one_round_identity () =
  List.iteri
    (fun i g ->
      let coins = PC.create (100 + i) in
      let direct, ds = Model.run Protocols.Trivial.mis g coins in
      let embedded, es = MP.run (MP.of_one_round Protocols.Trivial.mis) g coins in
      checkis "same MIS" (List.sort compare direct) (List.sort compare embedded);
      checki "same max_bits" ds.Model.max_bits es.MP.max_bits;
      checki "same total_bits" ds.Model.total_bits es.MP.total_bits;
      checki "one round" 1 es.MP.rounds;
      checki "no broadcast" 0 es.MP.broadcast_bits;
      checki "round_max agrees" ds.Model.max_bits es.MP.round_max.(0);
      checki "round_total agrees" ds.Model.total_bits es.MP.round_total.(0))
    (graphs 11)

let test_of_one_round_identity_mis_protocol () =
  List.iteri
    (fun i g ->
      let coins = PC.create (200 + i) in
      let p = Protocols.One_round_mis.local_minima in
      let direct, ds = Model.run p g coins in
      let embedded, es = MP.run (MP.of_one_round p) g coins in
      checkis "same MIS" (List.sort compare direct) (List.sort compare embedded);
      checki "same max_bits" ds.Model.max_bits es.MP.max_bits;
      checki "same total_bits" ds.Model.total_bits es.MP.total_bits)
    (graphs 12)

(* ---- Regression: r = 2 embedding is byte-identical to Rounds.run ---- *)

let test_of_two_round_identity_mis () =
  List.iteri
    (fun i g ->
      let n = G.n g in
      let coins = PC.create (300 + i) in
      let p = Protocols.Two_round_mis.protocol ~n () in
      let direct, ds = Rounds2.run p g coins in
      let embedded, es = MP.run (MP.of_two_round p) g coins in
      checkis "same MIS" (List.sort compare direct) (List.sort compare embedded);
      checki "same max_bits" ds.Rounds2.max_bits es.MP.max_bits;
      checki "same total_bits" ds.Rounds2.total_bits es.MP.total_bits;
      checki "same broadcast_bits" ds.Rounds2.broadcast_bits es.MP.broadcast_bits;
      checki "two rounds" 2 es.MP.rounds;
      checki "round1_max agrees" ds.Rounds2.round1_max es.MP.round_max.(0);
      checki "round2_max agrees" ds.Rounds2.round2_max es.MP.round_max.(1);
      checki "broadcast after round 1" ds.Rounds2.broadcast_bits es.MP.round_broadcast.(0);
      checki "no broadcast after finish" 0 es.MP.round_broadcast.(1))
    (graphs 13)

let test_of_two_round_identity_mm () =
  List.iteri
    (fun i g ->
      let n = G.n g in
      let coins = PC.create (400 + i) in
      let p = Protocols.Two_round_mm.protocol ~n () in
      let direct, ds = Rounds2.run p g coins in
      let embedded, es = MP.run (MP.of_two_round p) g coins in
      checkb "same matching" true (List.sort compare direct = List.sort compare embedded);
      checki "same max_bits" ds.Rounds2.max_bits es.MP.max_bits;
      checki "same total_bits" ds.Rounds2.total_bits es.MP.total_bits;
      checki "same broadcast_bits" ds.Rounds2.broadcast_bits es.MP.broadcast_bits)
    (graphs 14)

(* ---- Engine accounting invariants ---- *)

let test_stats_consistency () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 21) 30 0.2 in
  let coins = PC.create 22 in
  let _, s = Multipass.Frontier.run ~rounds:3 g coins in
  checki "rounds matches arrays" s.MP.rounds (Array.length s.MP.round_max);
  checki "rounds matches totals" s.MP.rounds (Array.length s.MP.round_total);
  checki "rounds matches broadcasts" s.MP.rounds (Array.length s.MP.round_broadcast);
  checki "total is the sum of rounds" s.MP.total_bits
    (Array.fold_left ( + ) 0 s.MP.round_total);
  checki "broadcast is the sum of rounds" s.MP.broadcast_bits
    (Array.fold_left ( + ) 0 s.MP.round_broadcast);
  checkb "max_bits >= each round max" true
    (Array.for_all (fun m -> s.MP.max_bits >= m) s.MP.round_max);
  checki "final round broadcasts nothing" 0 s.MP.round_broadcast.(s.MP.rounds - 1)

let test_max_rounds_guard () =
  let never =
    {
      MP.name = "never-finishes";
      max_rounds = 3;
      init = (fun ~n:_ _ -> ());
      player = (fun ~round:_ _ () _ -> Stdx.Bitbuf.Writer.create ());
      referee = (fun ~round:_ ~n:_ ~state:() ~sketches:_ _ -> MP.Continue ());
      encode_broadcast = (fun () -> Stdx.Bitbuf.Writer.create ());
    }
  in
  checkb "exceeding max_rounds raises" true
    (try
       ignore (MP.run never (Dgraph.Gen.cycle 4) (PC.create 1));
       false
     with Failure _ -> true)

(* ---- Frontier prefix MIS ---- *)

let test_frontier_blocks () =
  let b = Multipass.Frontier.blocks ~n:100 ~rounds:3 in
  checki "three cutoffs" 3 (Array.length b);
  checki "last cutoff is n" 100 b.(2);
  checkb "monotone" true (b.(0) <= b.(1) && b.(1) <= b.(2));
  let b1 = Multipass.Frontier.blocks ~n:50 ~rounds:1 in
  checkb "r=1 is the whole graph" true (b1 = [| 50 |])

let test_frontier_maximal_all_rounds () =
  List.iteri
    (fun i g ->
      List.iter
        (fun r ->
          let coins = PC.create ((i * 10) + r) in
          let mis, stats = Multipass.Frontier.run ~rounds:r g coins in
          checkb
            (Printf.sprintf "maximal IS (graph %d, r=%d)" i r)
            true
            (Dgraph.Mis.is_maximal g mis);
          checki "uses exactly r rounds" r stats.MP.rounds)
        [ 1; 2; 3; 4 ])
    (graphs 15)

let test_frontier_r1_ships_adjacency () =
  (* r = 1 is the full-information regime: every player reports all its
     neighbours, so the referee could not be cheaper — and more rounds
     shrink the worst single message on a dense graph. *)
  let g = Dgraph.Gen.complete 16 in
  let coins = PC.create 31 in
  let _, s1 = Multipass.Frontier.run ~rounds:1 g coins in
  let _, s4 = Multipass.Frontier.run ~rounds:4 g coins in
  checkb "r=4 max message below r=1" true (s4.MP.max_bits < s1.MP.max_bits)

(* ---- Luby priority variants ---- *)

let test_luby_maximal_all_priorities () =
  List.iteri
    (fun i g ->
      List.iter
        (fun prio ->
          let coins = PC.create ((500 + i) * 3) in
          let mis, stats = Multipass.Luby.run prio g coins in
          checkb
            (Printf.sprintf "maximal IS (%s, graph %d)" (Multipass.Luby.priority_name prio) i)
            true
            (Dgraph.Mis.is_maximal g mis);
          checkb "terminates within the cap" true (stats.MP.rounds <= G.n g + 3))
        [ Multipass.Luby.Random; Multipass.Luby.Degree; Multipass.Luby.Index ])
    (graphs 16)

let test_luby_deterministic () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 41) 24 0.2 in
  let a, sa = Multipass.Luby.run Multipass.Luby.Random g (PC.create 7) in
  let b, sb = Multipass.Luby.run Multipass.Luby.Random g (PC.create 7) in
  checkis "same output" a b;
  checki "same rounds" sa.MP.rounds sb.MP.rounds;
  checki "same bits" sa.MP.total_bits sb.MP.total_bits

let test_luby_index_path_is_slow () =
  (* Under Index priority a path 0-1-...-(n-1) admits one join per round
     from the high end: the deterministic worst case of the family. *)
  let n = 12 in
  let g = Dgraph.Gen.path n in
  let mis, stats = Multipass.Luby.run Multipass.Luby.Index g (PC.create 1) in
  checkb "maximal" true (Dgraph.Mis.is_maximal g mis);
  checkb "needs many rounds" true (stats.MP.rounds >= n / 2)

let test_luby_degree_prep_round () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 51) 20 0.25 in
  let coins = PC.create 52 in
  let _, sd = Multipass.Luby.run Multipass.Luby.Degree g coins in
  (* The prep round charges one uvarint per player and a broadcast. *)
  checkb "prep round broadcast charged" true (sd.MP.round_broadcast.(0) > 0);
  checkb "prep round player bits charged" true (sd.MP.round_max.(0) > 0)

(* ---- Multi-pass streaming matching ---- *)

let test_stream_matching_valid_and_monotone () =
  let rng = Stdx.Prng.create 61 in
  for seed = 1 to 8 do
    let g = Dgraph.Gen.gnp (Stdx.Prng.create (seed * 13)) 40 0.12 in
    let stream = S.shuffled rng g in
    let r = Multipass.Stream_matching.run ~eps:0.34 stream in
    checkb "valid matching" true (Dgraph.Matching.is_matching g r.Multipass.Stream_matching.matching);
    checkb "maximal (pass 1 guarantees it)" true
      (Dgraph.Matching.is_maximal g r.Multipass.Stream_matching.matching);
    let sizes =
      List.map
        (fun p -> p.Multipass.Stream_matching.matching_size)
        r.Multipass.Stream_matching.passes
    in
    checkb "matching never shrinks" true
      (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < List.length sizes - 1) sizes)
         (List.tl sizes));
    checkb "within the optimum" true
      (List.length r.Multipass.Stream_matching.matching
      <= Dgraph.Blossom.maximum_matching_size g)
  done

let test_stream_matching_reaches_near_optimum () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 71) 48 0.15 in
  let stream = S.shuffled (Stdx.Prng.create 72) g in
  let r = Multipass.Stream_matching.run ~eps:0.10 stream in
  let opt = Dgraph.Blossom.maximum_matching_size g in
  let got = List.length r.Multipass.Stream_matching.matching in
  checkb "within (1+eps) of optimum" true (float_of_int opt <= 1.10 *. float_of_int got)

let test_stream_matching_peak_memory () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 81) 36 0.2 in
  let r = Multipass.Stream_matching.run ~eps:0.5 (S.of_graph g) in
  let max_pass =
    List.fold_left
      (fun acc p -> max acc p.Multipass.Stream_matching.memory_bits)
      0 r.Multipass.Stream_matching.passes
  in
  checki "peak is the max over passes" max_pass r.Multipass.Stream_matching.peak_memory_bits;
  checkb "at least one pass" true (List.length r.Multipass.Stream_matching.passes >= 1)

let test_stream_matching_guards () =
  let deletions = { S.n = 3; events = [ S.Insert (0, 1); S.Delete (0, 1) ] } in
  checkb "rejects deletions" true
    (try
       ignore (Multipass.Stream_matching.run deletions);
       false
     with Invalid_argument _ -> true);
  checkb "rejects eps <= 0" true
    (try
       ignore (Multipass.Stream_matching.run ~eps:0.0 { S.n = 2; events = [] });
       false
     with Invalid_argument _ -> true)

let test_stream_matching_pass_budget () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 91) 30 0.3 in
  let r = Multipass.Stream_matching.run ~eps:0.05 ~max_passes:2 (S.of_graph g) in
  checkb "respects the budget" true (List.length r.Multipass.Stream_matching.passes <= 2)

(* ---- Properties ---- *)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frontier MIS maximal for any (n, seed, r)" ~count:60
         QCheck.(triple (int_range 1 30) (int_range 0 10000) (int_range 1 5))
         (fun (n, seed, r) ->
           let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) n 0.25 in
           let mis, _ = Multipass.Frontier.run ~rounds:r g (PC.create (seed + r)) in
           Dgraph.Mis.is_maximal g mis));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"luby MIS maximal for any priority" ~count:60
         QCheck.(triple (int_range 1 25) (int_range 0 10000) (int_range 0 2))
         (fun (n, seed, p) ->
           let prio =
             match p with 0 -> Multipass.Luby.Random | 1 -> Multipass.Luby.Degree | _ -> Multipass.Luby.Index
           in
           let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) n 0.3 in
           let mis, _ = Multipass.Luby.run prio g (PC.create (seed * 2 + 1)) in
           Dgraph.Mis.is_maximal g mis));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"stream matching maximal for any chunked replay" ~count:40
         QCheck.(triple (int_range 2 25) (int_range 0 10000) (int_range 1 6))
         (fun (n, seed, k) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           let s = S.concat (S.chunks (S.shuffled rng g) k) in
           let r = Multipass.Stream_matching.run ~eps:0.5 s in
           Dgraph.Matching.is_maximal g r.Multipass.Stream_matching.matching));
  ]

let () =
  Alcotest.run "multipass"
    [
      ( "engine",
        [
          Alcotest.test_case "r=1 identity (trivial mis)" `Quick test_of_one_round_identity;
          Alcotest.test_case "r=1 identity (local minima)" `Quick
            test_of_one_round_identity_mis_protocol;
          Alcotest.test_case "r=2 identity (two-round mis)" `Quick test_of_two_round_identity_mis;
          Alcotest.test_case "r=2 identity (two-round mm)" `Quick test_of_two_round_identity_mm;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
          Alcotest.test_case "max_rounds guard" `Quick test_max_rounds_guard;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "block cutoffs" `Quick test_frontier_blocks;
          Alcotest.test_case "maximal for all r" `Quick test_frontier_maximal_all_rounds;
          Alcotest.test_case "r=1 ships adjacency" `Quick test_frontier_r1_ships_adjacency;
        ] );
      ( "luby",
        [
          Alcotest.test_case "maximal for all priorities" `Quick test_luby_maximal_all_priorities;
          Alcotest.test_case "deterministic" `Quick test_luby_deterministic;
          Alcotest.test_case "index priority path worst case" `Quick test_luby_index_path_is_slow;
          Alcotest.test_case "degree prep round" `Quick test_luby_degree_prep_round;
        ] );
      ( "stream-matching",
        [
          Alcotest.test_case "valid and monotone" `Quick test_stream_matching_valid_and_monotone;
          Alcotest.test_case "near optimum at small eps" `Quick
            test_stream_matching_reaches_near_optimum;
          Alcotest.test_case "peak memory" `Quick test_stream_matching_peak_memory;
          Alcotest.test_case "guards" `Quick test_stream_matching_guards;
          Alcotest.test_case "pass budget" `Quick test_stream_matching_pass_budget;
        ] );
      ("multipass-properties", qcheck_tests);
    ]

(* Tests for Commgames.Simultaneous: the NIH / shared / NOF spectrum of
   Section 2.1, and the public-coin EQUALITY protocol. *)

module S = Commgames.Simultaneous
module PC = Sketchmodel.Public_coins

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_nih_classified () =
  let s = S.nih_example ~players:4 ~per_player:3 in
  checkb "NIH" true (S.classify s = S.Nih);
  Alcotest.(check (array int)) "each coordinate once" (Array.make 12 1) (S.multiplicity s)

let test_nof_classified () =
  let s = S.nof_example ~players:4 ~block:2 in
  checkb "NOF" true (S.classify s = S.Nof);
  Alcotest.(check (array int)) "each coordinate players-1 times" (Array.make 8 3)
    (S.multiplicity s)

let test_two_party_full_overlap_is_shared () =
  (* With 2 players, "sees everything but its own" degenerates; full
     overlap classifies as Shared 2, not NOF. *)
  let s = { S.players = 2; coordinates = 4; view = (fun _ -> [ 0; 1; 2; 3 ]) } in
  checkb "Shared 2" true (S.classify s = S.Shared 2)

let test_vertex_partition_is_shared_two () =
  (* The paper's claim: the sketching model lies between NIH and NOF — each
     edge slot is seen by exactly its two endpoints. *)
  (* Fun corner case checked separately: at n = 3 "each slot seen by two
     players" coincides with "all but one", i.e. the game IS
     number-on-forehead. *)
  checkb "n=3 degenerates to NOF" true (S.classify (S.of_vertex_partition ~n:3) = S.Nof);
  List.iter
    (fun n ->
      let s = S.of_vertex_partition ~n in
      checki "players" n s.S.players;
      checki "slots" (n * (n - 1) / 2) s.S.coordinates;
      checkb "strictly between NIH and NOF" true (S.classify s = S.Shared 2);
      Alcotest.(check (array int)) "every slot seen exactly twice"
        (Array.make s.S.coordinates 2) (S.multiplicity s);
      (* Player v sees exactly n-1 slots. *)
      for v = 0 to n - 1 do
        checki "degree of view" (n - 1) (List.length (s.S.view v))
      done)
    [ 4; 5; 8 ]

let test_vertex_partition_views_consistent () =
  (* Slot shared between u's and v's views is unique to that pair. *)
  let n = 6 in
  let s = S.of_vertex_partition ~n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let shared =
        List.filter (fun c -> List.mem c (s.S.view v)) (s.S.view u)
      in
      checki (Printf.sprintf "(%d,%d) share one slot" u v) 1 (List.length shared)
    done
  done

let test_equality_equal_strings () =
  let bits = 32 in
  let structure = S.equality_structure ~bits in
  checkb "equality board is NIH" true (S.classify structure = S.Nih);
  let rng = Stdx.Prng.create 1 in
  for seed = 1 to 20 do
    let x = Array.init bits (fun _ -> Stdx.Prng.bool rng) in
    let input = Array.append x x in
    let verdict, stats =
      S.run structure (S.equality_two_party ~bits ~reps:8) ~input (PC.create seed)
    in
    checkb "accepts equal" true verdict;
    checki "8 bits per player" 8 stats.Sketchmodel.Model.max_bits
  done

let test_equality_unequal_strings () =
  let bits = 32 in
  let structure = S.equality_structure ~bits in
  let rng = Stdx.Prng.create 2 in
  let rejections = ref 0 in
  let trials = 50 in
  for seed = 1 to trials do
    let x = Array.init bits (fun _ -> Stdx.Prng.bool rng) in
    (* flip one random coordinate *)
    let flip = Stdx.Prng.int rng bits in
    let y = Array.copy x in
    y.(flip) <- not y.(flip);
    let input = Array.append x y in
    let verdict, _ =
      S.run structure (S.equality_two_party ~bits ~reps:10) ~input (PC.create (seed * 7))
    in
    if not verdict then incr rejections
  done;
  (* One-sided error 2^-10 per trial: essentially all rejected. *)
  checkb (Printf.sprintf "rejected %d/%d" !rejections trials) true (!rejections >= trials - 1)

let test_run_guards () =
  let s = S.nih_example ~players:2 ~per_player:2 in
  Alcotest.check_raises "wrong input length" (Invalid_argument "Simultaneous.run: input length")
    (fun () ->
      ignore (S.run s (S.equality_two_party ~bits:2 ~reps:1) ~input:[| true |] (PC.create 1)))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"vertex partition always Shared 2" ~count:30
         (QCheck.int_range 2 20)
         (fun n ->
           let s = S.of_vertex_partition ~n in
           Array.for_all (fun c -> c = 2) (S.multiplicity s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"equality never rejects equal inputs" ~count:100
         QCheck.(pair (int_range 1 40) (int_range 0 10000))
         (fun (bits, seed) ->
           let rng = Stdx.Prng.create seed in
           let x = Array.init bits (fun _ -> Stdx.Prng.bool rng) in
           let verdict, _ =
             S.run (S.equality_structure ~bits)
               (S.equality_two_party ~bits ~reps:6)
               ~input:(Array.append x x) (PC.create (seed + 1))
           in
           verdict));
  ]

let () =
  Alcotest.run "commgames"
    [
      ( "structure",
        [
          Alcotest.test_case "NIH" `Quick test_nih_classified;
          Alcotest.test_case "NOF" `Quick test_nof_classified;
          Alcotest.test_case "two-party overlap" `Quick test_two_party_full_overlap_is_shared;
          Alcotest.test_case "vertex partition = Shared 2" `Quick
            test_vertex_partition_is_shared_two;
          Alcotest.test_case "views consistent" `Quick test_vertex_partition_views_consistent;
        ] );
      ( "equality",
        [
          Alcotest.test_case "equal accepted" `Quick test_equality_equal_strings;
          Alcotest.test_case "unequal rejected" `Quick test_equality_unequal_strings;
          Alcotest.test_case "guards" `Quick test_run_guards;
        ] );
      ("commgames-properties", qcheck_tests);
    ]

(* Tests for Protocols.Bcc_mm: maximal matching in O(log n) BCC rounds. *)

module PC = Sketchmodel.Public_coins

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_always_maximal_random () =
  let rng = Stdx.Prng.create 1 in
  for seed = 1 to 15 do
    let n = 10 + Stdx.Prng.int rng 60 in
    let g = Dgraph.Gen.gnp rng n 0.2 in
    let mm, _ = Protocols.Bcc_mm.run g (PC.create (seed * 13)) in
    checkb (Printf.sprintf "maximal seed=%d n=%d" seed n) true (Dgraph.Matching.is_maximal g mm)
  done

let test_shapes () =
  List.iter
    (fun (name, g) ->
      let mm, _ = Protocols.Bcc_mm.run g (PC.create 9) in
      checkb name true (Dgraph.Matching.is_maximal g mm))
    [
      ("complete", Dgraph.Gen.complete 15);
      ("path", Dgraph.Gen.path 21);
      ("cycle", Dgraph.Gen.cycle 16);
      ("star", Dgraph.Gen.star 12);
      ("empty", Dgraph.Graph.empty 7);
      ("grid", Dgraph.Gen.grid 5 6);
    ]

let test_cost_logarithmic () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 2) 100 0.1 in
  let _, stats = Protocols.Bcc_mm.run g (PC.create 3) in
  checki "rounds as configured" (Protocols.Bcc_mm.rounds_for 100)
    stats.Sketchmodel.Bcc.rounds_used;
  (* Each broadcast is one uvarint: at most 2 bytes for ids < 2^14. *)
  checkb "per-round bits tiny" true (stats.Sketchmodel.Bcc.max_bits_per_round <= 16);
  checkb "total = rounds x per-round-ish" true
    (stats.Sketchmodel.Bcc.max_bits_total
    <= stats.Sketchmodel.Bcc.rounds_used * stats.Sketchmodel.Bcc.max_bits_per_round)

let test_rounds_grow_slowly () =
  checkb "log growth" true
    (Protocols.Bcc_mm.rounds_for 4096 <= Protocols.Bcc_mm.rounds_for 64 + 18)

let test_deterministic_given_coins () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 4) 40 0.25 in
  let a, _ = Protocols.Bcc_mm.run g (PC.create 5) in
  let b, _ = Protocols.Bcc_mm.run g (PC.create 5) in
  checkb "same matching" true (a = b)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bcc matching maximal on random graphs" ~count:25
         QCheck.(pair (int_range 2 40) (int_range 0 10000))
         (fun (n, seed) ->
           let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) n 0.3 in
           let mm, _ = Protocols.Bcc_mm.run g (PC.create (seed + 1)) in
           Dgraph.Matching.is_maximal g mm));
  ]

let () =
  Alcotest.run "bcc_mm"
    [
      ( "bcc-mm",
        [
          Alcotest.test_case "always maximal" `Quick test_always_maximal_random;
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "cost logarithmic" `Quick test_cost_logarithmic;
          Alcotest.test_case "rounds grow slowly" `Quick test_rounds_grow_slowly;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_coins;
        ] );
      ("bcc-mm-properties", qcheck_tests);
    ]

(* Tests for Dgraph.Mis. *)

module G = Dgraph.Graph
module Mis = Dgraph.Mis

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_greedy_path () =
  let g = Dgraph.Gen.path 5 in
  let s = Mis.greedy g () in
  Alcotest.(check (list int)) "greedy order 0..n" [ 0; 2; 4 ] s;
  checkb "maximal" true (Mis.is_maximal g s)

let test_greedy_complete () =
  let g = Dgraph.Gen.complete 8 in
  checki "K8 MIS has one vertex" 1 (List.length (Mis.greedy g ()))

let test_greedy_empty_graph () =
  let g = G.empty 4 in
  Alcotest.(check (list int)) "all vertices" [ 0; 1; 2; 3 ] (Mis.greedy g ())

let test_verify () =
  let g = Dgraph.Gen.path 4 in
  (* 0-1-2-3 *)
  let v = Mis.verify g [ 0; 2 ] in
  checkb "independent" true v.Mis.independent;
  checkb "maximal" true v.Mis.maximal;
  let v2 = Mis.verify g [ 0; 1 ] in
  checkb "not independent" false v2.Mis.independent;
  let v3 = Mis.verify g [ 1 ] in
  checkb "not maximal" false v3.Mis.maximal;
  checkb "but independent" true v3.Mis.independent

let test_greedy_prefix () =
  let g = Dgraph.Gen.path 5 in
  let order = [| 1; 3; 0; 2; 4 |] in
  let partial, decided = Mis.greedy_prefix g ~order ~prefix:2 in
  Alcotest.(check (list int)) "partial" [ 1; 3 ] partial;
  (* 1 and 3 chosen; 0, 2, 4 dominated. *)
  List.iter (fun v -> checkb (string_of_int v) true (Stdx.Bitset.mem decided v)) [ 0; 1; 2; 3; 4 ]

let test_greedy_prefix_empty () =
  let g = Dgraph.Gen.path 3 in
  let partial, decided = Mis.greedy_prefix g ~order:[| 0; 1; 2 |] ~prefix:0 in
  Alcotest.(check (list int)) "nothing chosen" [] partial;
  checki "nothing decided" 0 (Stdx.Bitset.cardinal decided)

let test_luby () =
  let rng = Stdx.Prng.create 7 in
  List.iter
    (fun g ->
      let s = Mis.luby g (Stdx.Prng.copy rng) in
      checkb "luby independent" true (Mis.is_independent g s);
      checkb "luby maximal" true (Mis.is_maximal g s))
    [
      Dgraph.Gen.complete 10;
      Dgraph.Gen.cycle 11;
      Dgraph.Gen.gnp rng 40 0.15;
      Dgraph.Gen.gnp rng 40 0.6;
      G.empty 6;
    ]

let test_residual_after () =
  let g = Dgraph.Gen.path 6 in
  (* choose 0: dominates 1; residual = {2,3,4,5} with path edges *)
  let residual, back = Mis.residual_after g [ 0 ] in
  checki "residual size" 4 (G.n residual);
  Alcotest.(check (array int)) "back" [| 2; 3; 4; 5 |] back;
  checki "residual edges" 3 (G.m residual)

let test_out_of_range () =
  let g = G.empty 3 in
  Alcotest.check_raises "bad vertex" (Invalid_argument "Mis: vertex out of range") (fun () ->
      ignore (Mis.is_independent g [ 5 ]))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"greedy always a maximal IS" ~count:300
         QCheck.(pair (int_range 1 30) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           Mis.is_maximal g (Mis.greedy g ())));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"luby always a maximal IS" ~count:100
         QCheck.(pair (int_range 1 25) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           Mis.is_maximal g (Mis.luby g rng)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"greedy under random order maximal" ~count:200
         QCheck.(pair (int_range 1 25) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.25 in
           let order = Stdx.Prng.permutation rng n in
           Mis.is_maximal g (Mis.greedy g ~order ())));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"prefix + completion = maximal IS" ~count:200
         QCheck.(triple (int_range 2 25) (int_range 0 1000) (int_range 0 10))
         (fun (n, seed, prefix_raw) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           let order = Stdx.Prng.permutation rng n in
           let prefix = min n prefix_raw in
           let partial, decided = Mis.greedy_prefix g ~order ~prefix in
           (* Finish greedily over undecided vertices. *)
           let completion = ref (List.rev partial) in
           let chosen = Stdx.Bitset.create n in
           List.iter (Stdx.Bitset.add chosen) partial;
           for v = 0 to n - 1 do
             if
               (not (Stdx.Bitset.mem decided v))
               && not
                    (Array.exists (fun u -> Stdx.Bitset.mem chosen u) (Dgraph.Graph.neighbors g v))
             then begin
               Stdx.Bitset.add chosen v;
               completion := v :: !completion
             end
           done;
           Mis.is_maximal g (List.rev !completion)));
  ]

let () =
  Alcotest.run "mis"
    [
      ( "mis",
        [
          Alcotest.test_case "greedy path" `Quick test_greedy_path;
          Alcotest.test_case "greedy complete" `Quick test_greedy_complete;
          Alcotest.test_case "greedy empty graph" `Quick test_greedy_empty_graph;
          Alcotest.test_case "verify" `Quick test_verify;
          Alcotest.test_case "greedy prefix" `Quick test_greedy_prefix;
          Alcotest.test_case "greedy prefix empty" `Quick test_greedy_prefix_empty;
          Alcotest.test_case "luby" `Quick test_luby;
          Alcotest.test_case "residual after" `Quick test_residual_after;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
        ] );
      ("mis-properties", qcheck_tests);
    ]

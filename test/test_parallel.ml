(* Tests for Stdx.Parallel, the deterministic multicore trial engine:
   chunking never drops/duplicates/reorders indices, results are
   bit-identical at every job count, and the parallelized experiment
   tables (claim31, budget_sweep, estimate_accounting, packing_table)
   agree across jobs = 1, 2, 4. *)

module E = Core.Experiments
module P = Stdx.Parallel

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Adversarial trial counts: empty, single, prime, exactly jobs*chunk,
   one past a chunk boundary, and far more than jobs*chunk. *)
let adversarial_ns = [ 0; 1; 2; 3; 5; 7; 8; 9; 13; 16; 17; 97; 128; 129 ]

let job_counts = [ 1; 2; 3; 4; 7; 16 ]

let test_init_identity () =
  List.iter
    (fun n ->
      let expected = Array.init n (fun i -> i) in
      List.iter
        (fun jobs ->
          Alcotest.(check (array int))
            (Printf.sprintf "init ~jobs:%d %d covers every index once" jobs n)
            expected
            (P.init ~jobs n (fun i -> i)))
        job_counts)
    adversarial_ns

let test_init_matches_sequential () =
  (* A non-trivial per-index computation seeded by Prng.split, exactly the
     engine's intended use. *)
  let root = Stdx.Prng.create 4242 in
  let trial i =
    let rng = Stdx.Prng.split root i in
    (Stdx.Prng.int rng 1000, Stdx.Prng.float rng)
  in
  List.iter
    (fun n ->
      let reference = P.init ~jobs:1 n trial in
      List.iter
        (fun jobs ->
          checkb
            (Printf.sprintf "jobs=%d bit-identical to sequential (n=%d)" jobs n)
            true
            (P.init ~jobs n trial = reference))
        job_counts)
    adversarial_ns

let test_map_and_map_list () =
  let a = Array.init 37 (fun i -> i * 3) in
  let f x = (x * x) - 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int)) "map = Array.map" (Array.map f a) (P.map ~jobs f a);
      Alcotest.(check (list int))
        "map_list = List.map"
        (List.map f (Array.to_list a))
        (P.map_list ~jobs f (Array.to_list a)))
    job_counts

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "worker failure surfaces at jobs=%d" jobs)
        (Failure "boom")
        (fun () -> ignore (P.init ~jobs 16 (fun i -> if i = 11 then failwith "boom" else i))))
    [ 1; 2; 4 ]

let test_negative_n_rejected () =
  Alcotest.check_raises "negative length" (Invalid_argument "Parallel.init: negative length")
    (fun () -> ignore (P.init ~jobs:2 (-1) (fun i -> i)))

let test_default_jobs_positive () =
  checkb "recommended domain count >= 1" true (P.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* The experiment tables themselves: identical rows at jobs 1, 2, 4.   *)

let assert_jobs_invariant name run =
  let reference = run 1 in
  List.iter
    (fun jobs ->
      checkb (Printf.sprintf "%s identical at jobs=%d" name jobs) true (run jobs = reference))
    [ 2; 4 ]

let test_claim31_jobs_invariant () =
  assert_jobs_invariant "claim31" (fun jobs ->
      E.claim31 ~jobs ~ms:[ 4; 5 ] ~samples:7 ~seed:3 ())

let test_budget_sweep_jobs_invariant () =
  assert_jobs_invariant "budget_sweep" (fun jobs ->
      E.budget_sweep ~jobs ~m:5 ~budgets:[ 8; 64 ] ~trials:5 ~seed:5 ())

let test_estimate_jobs_invariant () =
  assert_jobs_invariant "estimate_accounting" (fun jobs ->
      E.estimate_accounting ~jobs ~bits:[ 4 ] ~samples:300 ~seed:7 ())

let test_packing_jobs_invariant () =
  assert_jobs_invariant "packing_table" (fun jobs ->
      E.packing_table ~jobs ~ms:[ 3; 4; 5 ] ~tries:120 ~seed:9 ())

let test_parallel_speedup_identical () =
  let rows = E.parallel_speedup ~jobs:4 ~m:4 ~samples:6 ~seed:11 () in
  checkb "at least two job counts measured" true (List.length rows >= 2);
  List.iter
    (fun r ->
      checkb (Printf.sprintf "jobs=%d rows identical to sequential" r.E.pjobs) true r.E.identical;
      checkb "wall-clock non-negative" true (r.E.wall_s >= 0.))
    rows;
  checki "baseline row is jobs=1" 1 (List.hd rows).E.pjobs

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"chunking drops/duplicates nothing" ~count:300
         QCheck.(pair (int_range 0 200) (int_range 1 12))
         (fun (n, jobs) ->
           P.init ~jobs n (fun i -> i) = Array.init n (fun i -> i)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"job count never changes results" ~count:100
         QCheck.(triple (int_range 0 1000) (int_range 0 120) (pair (int_range 1 8) (int_range 1 8)))
         (fun (seed, n, (ja, jb)) ->
           let root = Stdx.Prng.create seed in
           let trial i = Stdx.Prng.bits64 (Stdx.Prng.split root i) in
           P.init ~jobs:ja n trial = P.init ~jobs:jb n trial));
  ]

let () =
  Alcotest.run "parallel"
    [
      ( "engine",
        [
          Alcotest.test_case "init covers adversarial sizes" `Quick test_init_identity;
          Alcotest.test_case "init matches sequential" `Quick test_init_matches_sequential;
          Alcotest.test_case "map and map_list" `Quick test_map_and_map_list;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "negative n rejected" `Quick test_negative_n_rejected;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "experiments-determinism",
        [
          Alcotest.test_case "claim31 jobs-invariant" `Quick test_claim31_jobs_invariant;
          Alcotest.test_case "budget_sweep jobs-invariant" `Quick test_budget_sweep_jobs_invariant;
          Alcotest.test_case "estimate jobs-invariant" `Slow test_estimate_jobs_invariant;
          Alcotest.test_case "packing jobs-invariant" `Quick test_packing_jobs_invariant;
          Alcotest.test_case "speedup report identical" `Quick test_parallel_speedup_identical;
        ] );
      ("engine-properties", qcheck_tests);
    ]

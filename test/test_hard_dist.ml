(* Tests for Core.Hard_dist: the structure of D_MM samples. *)

module HD = Core.Hard_dist
module Rs = Rsgraph.Rs_graph
module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let sample ?(m = 5) ?k seed =
  let rs = Rs.bipartite m in
  HD.sample rs ?k (Stdx.Prng.create seed)

let test_vertex_count_formula () =
  List.iter
    (fun (m, k) ->
      let rs = Rs.bipartite m in
      let dmm = HD.sample rs ~k (Stdx.Prng.create 1) in
      checki "n = N - 2r + 2rk" (Rs.n rs - (2 * rs.Rs.r) + (2 * rs.Rs.r * k)) dmm.HD.n;
      checki "graph size matches" dmm.HD.n (G.n dmm.HD.graph))
    [ (3, 1); (5, 2); (5, 5); (10, 10) ]

let test_default_k_is_t () =
  let dmm = sample 2 in
  checki "k = t" (HD.t_count dmm) dmm.HD.k

let test_label_partition () =
  let dmm = sample 3 in
  let all =
    Array.to_list dmm.HD.public_labels
    @ List.concat_map Array.to_list (Array.to_list dmm.HD.unique_labels)
  in
  checki "labels cover [0, n)" dmm.HD.n (List.length all);
  Alcotest.(check (list int)) "exactly a permutation" (List.init dmm.HD.n (fun i -> i))
    (List.sort compare all)

let test_public_unique_predicates () =
  let dmm = sample 4 in
  Array.iter (fun l -> checkb "public" true (HD.is_public dmm l)) dmm.HD.public_labels;
  Array.iter
    (fun row -> Array.iter (fun l -> checkb "unique" true (HD.is_unique dmm l)) row)
    dmm.HD.unique_labels

let test_copy_map_consistency () =
  let dmm = sample 5 in
  let nn = HD.big_n dmm in
  (* Each copy's map is injective; public rows are shared across copies,
     unique rows differ. *)
  for i = 0 to dmm.HD.k - 1 do
    let seen = Hashtbl.create nn in
    Array.iter
      (fun l ->
        checkb "injective" false (Hashtbl.mem seen l);
        Hashtbl.replace seen l ())
      dmm.HD.copy_map.(i)
  done;
  let star = Rs.matching_vertices dmm.HD.rs dmm.HD.j_star in
  for v = 0 to nn - 1 do
    let is_star = Array.mem v star in
    for i = 1 to dmm.HD.k - 1 do
      if is_star then
        checkb "star vertices get fresh labels" false
          (dmm.HD.copy_map.(i).(v) = dmm.HD.copy_map.(0).(v))
      else checki "public labels shared" dmm.HD.copy_map.(0).(v) dmm.HD.copy_map.(i).(v)
    done
  done

let test_graph_is_union_of_kept_copies () =
  let dmm = sample 6 in
  (* Every graph edge must be a kept copy of an RS edge, and vice versa. *)
  let expected = Hashtbl.create 256 in
  for i = 0 to dmm.HD.k - 1 do
    Array.iteri
      (fun e (u, v) ->
        if dmm.HD.kept.(i).(e) then
          Hashtbl.replace expected
            (G.normalize_edge dmm.HD.copy_map.(i).(u) dmm.HD.copy_map.(i).(v))
            ())
      dmm.HD.rs_edges
  done;
  checki "edge count" (Hashtbl.length expected) (G.m dmm.HD.graph);
  G.iter_edges
    (fun u v -> checkb "edge expected" true (Hashtbl.mem expected (G.normalize_edge u v)))
    dmm.HD.graph

let test_special_pairs () =
  let dmm = sample 7 in
  let pairs = HD.special_pairs dmm in
  checki "k * r pairs" (dmm.HD.k * HD.r dmm) (List.length pairs);
  List.iter
    (fun (_, (u, v)) ->
      checkb "unique endpoints" true (HD.is_unique dmm u && HD.is_unique dmm v))
    pairs;
  (* Vertex-disjoint: each unique label appears at most once. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, (u, v)) ->
      checkb "disjoint" false (Hashtbl.mem seen u || Hashtbl.mem seen v);
      Hashtbl.replace seen u ();
      Hashtbl.replace seen v ())
    pairs

let test_surviving_subset_and_edges () =
  let dmm = sample 8 in
  let surviving = HD.surviving_special dmm in
  let all = HD.special_pairs dmm in
  checkb "subset" true (List.for_all (fun p -> List.mem p all) surviving);
  List.iter
    (fun (_, (u, v)) -> checkb "survivors are edges" true (G.mem_edge dmm.HD.graph u v))
    surviving;
  (* Non-survivors are not edges (special pairs are unique-unique, so they
     cannot reappear via another copy). *)
  List.iter
    (fun ((_, (u, v)) as p) ->
      if not (List.mem p surviving) then
        checkb "dropped pairs absent" false (G.mem_edge dmm.HD.graph u v))
    all

let test_kept_vector_matches () =
  let dmm = sample 9 in
  let total = ref 0 in
  for i = 0 to dmm.HD.k - 1 do
    let v = HD.kept_vector dmm ~copy:i ~j:dmm.HD.j_star in
    checki "length r" (HD.r dmm) (Array.length v);
    Array.iter (fun b -> if b then incr total) v
  done;
  checki "sum = survivors" (List.length (HD.surviving_special dmm)) !total

let test_unique_unique_filter () =
  let dmm = sample 10 in
  let m = Core.Claims.maximal_matching_under dmm Core.Claims.Lexicographic in
  let uu = HD.unique_unique_edges dmm m in
  List.iter
    (fun (u, v) -> checkb "both unique" true (HD.is_unique dmm u && HD.is_unique dmm v))
    uu;
  checkb "subset of matching" true (List.for_all (fun e -> List.mem e m) uu)

let test_augmented_views_counts () =
  let dmm = sample 11 in
  let views = HD.augmented_views dmm in
  checki "player count" (HD.public_player_count dmm + HD.unique_player_count dmm)
    (Array.length views);
  checki "public count" (HD.big_n dmm - (2 * HD.r dmm)) (HD.public_player_count dmm);
  checki "unique count" (dmm.HD.k * HD.big_n dmm) (HD.unique_player_count dmm)

let test_augmented_public_views_match_graph () =
  let dmm = sample 12 in
  let views = HD.augmented_views dmm in
  Array.iteri
    (fun l label ->
      let view = views.(l) in
      checki "vertex is label" label view.Sketchmodel.Model.vertex;
      Alcotest.(check (array int)) "full neighborhood"
        (G.neighbors dmm.HD.graph label)
        view.Sketchmodel.Model.neighbors)
    dmm.HD.public_labels

let test_augmented_unique_views_partition_copies () =
  let dmm = sample 13 in
  let views = HD.augmented_views dmm in
  let p = HD.public_player_count dmm in
  let nn = HD.big_n dmm in
  (* The unique players of copy i collectively see exactly the kept edges
     of copy i (each edge twice). *)
  for i = 0 to dmm.HD.k - 1 do
    let seen = Hashtbl.create 64 in
    for v = 0 to nn - 1 do
      let view = views.(p + (i * nn) + v) in
      Array.iter
        (fun u ->
          let e = G.normalize_edge view.Sketchmodel.Model.vertex u in
          Hashtbl.replace seen e
            (1 + Option.value ~default:0 (Hashtbl.find_opt seen e)))
        view.Sketchmodel.Model.neighbors
    done;
    let kept_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 dmm.HD.kept.(i) in
    checki "each copy edge seen twice" (2 * kept_count)
      (Hashtbl.fold (fun _ c acc -> acc + c) seen 0);
    checki "distinct edges = kept" kept_count (Hashtbl.length seen)
  done

let test_dmm_is_bipartite () =
  (* The RS construction is bipartite and gluing respects sides, so every
     D_MM instance is bipartite — handy and worth pinning down. *)
  for seed = 1 to 5 do
    let dmm = sample ~m:(4 + seed) seed in
    checkb "bipartite" true (Agm.Connectivity.is_bipartite_exact dmm.HD.graph)
  done

let test_unique_vertex_degree_bound () =
  (* A unique vertex lives in one copy only; its degree is at most its RS
     vertex's degree there. Public vertices can accumulate degree across
     all k copies. *)
  let dmm = sample ~m:8 3 in
  let rs_max = Dgraph.Graph.max_degree dmm.HD.rs.Rsgraph.Rs_graph.graph in
  Array.iter
    (fun row ->
      Array.iter
        (fun label ->
          checkb "unique degree bounded by RS degree" true
            (Dgraph.Graph.degree dmm.HD.graph label <= rs_max))
        row)
    dmm.HD.unique_labels

let test_make_deterministic () =
  let rs = Rs.bipartite 4 in
  let rng = Stdx.Prng.create 99 in
  let dmm = HD.sample rs rng in
  let again =
    HD.make rs ~k:dmm.HD.k ~j_star:dmm.HD.j_star ~sigma:dmm.HD.sigma ~kept:dmm.HD.kept
  in
  checkb "same graph" true (G.equal dmm.HD.graph again.HD.graph);
  checkb "same labels" true (dmm.HD.public_labels = again.HD.public_labels)

let test_make_guards () =
  let rs = Rs.bipartite 3 in
  let raises f = try f (); false with Invalid_argument _ -> true in
  checkb "bad j_star" true
    (raises (fun () ->
         ignore
           (HD.make rs ~k:1 ~j_star:99
              ~sigma:(Array.init (Rs.n rs) (fun i -> i))
              ~kept:[| Array.make (G.m rs.Rs.graph) true |])));
  checkb "bad sigma" true
    (raises (fun () ->
         ignore
           (HD.make rs ~k:1 ~j_star:0 ~sigma:[| 0 |]
              ~kept:[| Array.make (G.m rs.Rs.graph) true |])));
  checkb "bad kept shape" true
    (raises (fun () ->
         ignore
           (HD.make rs ~k:2 ~j_star:0
              ~sigma:(Array.init (Rs.n rs + (2 * rs.Rs.r)) (fun i -> i))
              ~kept:[| Array.make (G.m rs.Rs.graph) true |])))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"survivors ~ half of special pairs" ~count:20
         QCheck.(int_range 0 1000)
         (fun seed ->
           let dmm = sample ~m:10 seed in
           let total = dmm.HD.k * HD.r dmm in
           let survivors = List.length (HD.surviving_special dmm) in
           (* Bin(50, 1/2): allow a generous window. *)
           survivors > total / 5 && survivors < total * 4 / 5));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"graph structure valid for random seeds" ~count:20
         QCheck.(pair (int_range 2 8) (int_range 0 1000))
         (fun (m, seed) ->
           let dmm = sample ~m seed in
           G.n dmm.HD.graph = dmm.HD.n
           && Array.for_all
                (fun (u, v) -> u >= 0 && v < dmm.HD.n && u <> v)
                (G.edges_array dmm.HD.graph)));
  ]

let () =
  Alcotest.run "hard_dist"
    [
      ( "structure",
        [
          Alcotest.test_case "vertex count formula" `Quick test_vertex_count_formula;
          Alcotest.test_case "default k = t" `Quick test_default_k_is_t;
          Alcotest.test_case "label partition" `Quick test_label_partition;
          Alcotest.test_case "public/unique predicates" `Quick test_public_unique_predicates;
          Alcotest.test_case "copy map consistency" `Quick test_copy_map_consistency;
          Alcotest.test_case "graph is union of kept copies" `Quick
            test_graph_is_union_of_kept_copies;
        ] );
      ( "special-matching",
        [
          Alcotest.test_case "special pairs" `Quick test_special_pairs;
          Alcotest.test_case "surviving subset" `Quick test_surviving_subset_and_edges;
          Alcotest.test_case "kept vector" `Quick test_kept_vector_matches;
          Alcotest.test_case "unique-unique filter" `Quick test_unique_unique_filter;
        ] );
      ( "augmented-players",
        [
          Alcotest.test_case "counts" `Quick test_augmented_views_counts;
          Alcotest.test_case "public views" `Quick test_augmented_public_views_match_graph;
          Alcotest.test_case "unique views partition copies" `Quick
            test_augmented_unique_views_partition_copies;
        ] );
      ( "construction",
        [
          Alcotest.test_case "D_MM is bipartite" `Quick test_dmm_is_bipartite;
          Alcotest.test_case "unique degree bound" `Quick test_unique_vertex_degree_bound;
          Alcotest.test_case "make deterministic" `Quick test_make_deterministic;
          Alcotest.test_case "make guards" `Quick test_make_guards;
        ] );
      ("hard-dist-properties", qcheck_tests);
    ]

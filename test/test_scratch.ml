(* Tests for Stdx.Scratch: the per-domain keyed arena behind the hot
   experiment loops. Pins the ownership contract of PERFORMANCE.md —
   zero-fill on borrow, physical reuse at a stable length, realloc on a
   length change, key exclusivity, dirty borrows, and the Parallel
   chunk wiring. *)

module S = Stdx.Scratch

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_zero_fill () =
  let t = S.create () in
  let a = S.ints t "k" 8 in
  checkb "fresh is zero" true (Array.for_all (fun x -> x = 0) a);
  Array.fill a 0 8 42;
  let b = S.ints t "k" 8 in
  checkb "re-borrow is reset to zero" true (Array.for_all (fun x -> x = 0) b);
  let f = S.floats t "f" 4 in
  f.(0) <- 3.5;
  checkb "float re-borrow is reset" true
    (Array.for_all (fun x -> x = 0.0) (S.floats t "f" 4))

let test_physical_reuse () =
  let t = S.create () in
  let a = S.ints t "k" 16 in
  let b = S.ints t "k" 16 in
  checkb "same backing store at same length" true (a == b);
  let f1 = S.floats t "f" 16 in
  checkb "float reuse" true (f1 == S.floats t "f" 16)

let test_realloc_on_length_change () =
  let t = S.create () in
  let a = S.ints t "k" 8 in
  let b = S.ints t "k" 9 in
  checkb "length change reallocates" true (not (a == b));
  checki "new length" 9 (Array.length b);
  let s = S.stats t in
  checki "two reallocs" 2 s.S.reallocs;
  checki "two borrows" 2 s.S.borrows;
  (* Back at the cached length 9: no further realloc. *)
  ignore (S.ints t "k" 9);
  checki "steady state reallocs flat" 2 (S.stats t).S.reallocs;
  checki "steady state borrows grow" 3 (S.stats t).S.borrows

let test_key_exclusivity () =
  let t = S.create () in
  let a = S.ints t "a" 8 and b = S.ints t "b" 8 in
  checkb "distinct keys never alias" true (not (a == b));
  a.(0) <- 7;
  checki "writes do not leak across keys" 0 b.(0);
  (* A key caches one buffer: switching element type at the same key is
     a realloc (the int entry is replaced), not an alias. *)
  let r0 = (S.stats t).S.reallocs in
  ignore (S.floats t "a" 8);
  checki "type change reallocates" (r0 + 1) (S.stats t).S.reallocs;
  checki "detached borrow keeps its contents" 7 a.(0)

let test_dirty_borrow () =
  let t = S.create () in
  let a = S.dirty_ints t "k" 8 in
  checkb "fresh dirty borrow is still zero (new allocation)" true
    (Array.for_all (fun x -> x = 0) a);
  Array.fill a 0 8 9;
  let b = S.dirty_ints t "k" 8 in
  checkb "dirty re-borrow reuses" true (a == b);
  checki "dirty re-borrow skips the fill" 9 b.(0);
  let c = S.ints t "k" 8 in
  checkb "clean borrow of the same key resets" true (Array.for_all (fun x -> x = 0) c)

let test_negative_length () =
  let t = S.create () in
  List.iter
    (fun (msg, f) -> Alcotest.check_raises "negative length" (Invalid_argument msg) f)
    [
      ("Scratch.ints: negative length", fun () -> ignore (S.ints t "k" (-1)));
      ("Scratch.ints: negative length", fun () -> ignore (S.dirty_ints t "k" (-1)));
      ("Scratch.floats: negative length", fun () -> ignore (S.floats t "k" (-1)));
      ("Scratch.floats: negative length", fun () -> ignore (S.dirty_floats t "k" (-1)));
    ]

let test_clear () =
  let t = S.create () in
  ignore (S.ints t "a" 8);
  ignore (S.floats t "b" 8);
  checkb "keys cached" true ((S.stats t).S.keys > 0);
  S.clear t;
  let s = S.stats t in
  checki "no keys after clear" 0 s.S.keys;
  checki "borrows reset" 0 s.S.borrows;
  checki "reallocs reset" 0 s.S.reallocs;
  checki "no live words" 0 s.S.live_words

let test_live_words () =
  let t = S.create () in
  ignore (S.ints t "a" 10);
  let w10 = (S.stats t).S.live_words in
  checkb "counts contents plus header" true (w10 >= 10);
  ignore (S.ints t "a" 100);
  checkb "tracks the realloc" true ((S.stats t).S.live_words > w10)

let test_domain_arena () =
  let a = S.domain () in
  checkb "same arena on repeated calls" true (a == S.domain ());
  let other = Domain.spawn (fun () -> S.domain () == a) in
  checkb "other domains get their own arena" false (Domain.join other)

let test_chunk_begin () =
  let c0 = S.chunk_count () in
  S.chunk_begin ();
  checki "chunk_begin bumps the counter" (c0 + 1) (S.chunk_count ())

let test_parallel_wiring () =
  (* Parallel.init must call chunk_begin in the filling domain: a
     sequential fill runs on the calling domain, so the counter here
     must move. *)
  let c0 = S.chunk_count () in
  let a = Stdx.Parallel.init ~jobs:1 4 (fun i -> i * i) in
  checkb "a chunk fill notifies the arena layer" true (S.chunk_count () > c0);
  checki "fill ran" 9 a.(3)

let () =
  Alcotest.run "scratch"
    [
      ( "arena",
        [
          Alcotest.test_case "zero fill" `Quick test_zero_fill;
          Alcotest.test_case "physical reuse" `Quick test_physical_reuse;
          Alcotest.test_case "realloc on length change" `Quick test_realloc_on_length_change;
          Alcotest.test_case "key exclusivity" `Quick test_key_exclusivity;
          Alcotest.test_case "dirty borrow" `Quick test_dirty_borrow;
          Alcotest.test_case "negative length" `Quick test_negative_length;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "live words" `Quick test_live_words;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "domain arena" `Quick test_domain_arena;
          Alcotest.test_case "chunk begin" `Quick test_chunk_begin;
          Alcotest.test_case "parallel wiring" `Quick test_parallel_wiring;
        ] );
    ]

(* Tests for the sketchd server stack, bottom-up: wire framing (including
   hostile headers), the LRU result cache, the bounded scheduler's drop
   paths, the socket-free [Service] endpoints (cache determinism, param
   validation, simulate-vs-library bit accounting), and a real [Daemon]
   over loopback TCP surviving misbehaving clients without leaking worker
   slots. *)

module T = Report.Tabular
module W = Server.Wire
module S = Server.Service

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let test_wire_roundtrip () =
  List.iter
    (fun payload ->
      let frame = W.encode payload in
      let decoded, off = W.decode frame ~off:0 in
      checks "payload" payload decoded;
      checki "offset" (String.length frame) off)
    [ ""; "x"; "{\"op\":\"ping\"}"; String.make 300 'a'; String.init 256 Char.chr ]

let test_wire_stream () =
  (* Back-to-back frames decode by chasing the returned offset. *)
  let frames = [ "one"; ""; "three" ] in
  let s = String.concat "" (List.map W.encode frames) in
  let rec take off acc =
    if off = String.length s then List.rev acc
    else
      let p, off = W.decode s ~off in
      take off (p :: acc)
  in
  checkb "stream decodes" true (take 0 [] = frames)

let test_wire_hostile () =
  let raises_closed s = match W.decode s ~off:0 with _ -> false | exception W.Closed -> true in
  let raises_malformed s =
    match W.decode s ~off:0 with _ -> false | exception W.Malformed _ -> true
  in
  let raises_oversized s =
    match W.decode s ~off:0 with _ -> false | exception W.Oversized _ -> true
  in
  checkb "EOF at boundary is Closed" true (raises_closed "");
  checkb "truncated payload" true (raises_malformed (String.sub (W.encode "hello") 0 3));
  checkb "truncated header" true (raises_malformed "\xff");
  (* 10 continuation groups: header longer than any length we accept. *)
  checkb "over-long header" true (raises_malformed (String.make 10 '\xff'));
  (* Declares max_frame + 1 bytes: rejected before any allocation. *)
  let declare n =
    let w = Stdx.Bitbuf.Writer.create () in
    Stdx.Bitbuf.Writer.uvarint w n;
    let bytes, _ = Stdx.Bitbuf.Writer.contents w in
    Bytes.to_string bytes
  in
  checkb "oversized declaration" true (raises_oversized (declare (W.max_frame + 1)));
  (* 9 groups of 0x7f payload bits = 2^63 - 1, which overflows OCaml's
     63-bit int to a negative length; must not bypass the bound check. *)
  checkb "int-overflow declaration" true (raises_oversized (String.make 8 '\xff' ^ "\x7f"))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_lru () =
  let c = Server.Cache.create ~max_entries:2 ~max_bytes:1000 () in
  Server.Cache.add c "a" "1";
  Server.Cache.add c "b" "2";
  checkb "a present" true (Server.Cache.find c "a" = Some "1");
  (* "a" was just used, so inserting "c" evicts "b" (the LRU). *)
  Server.Cache.add c "c" "3";
  checkb "b evicted" true (Server.Cache.find c "b" = None);
  checkb "a survives" true (Server.Cache.find c "a" = Some "1");
  let s = Server.Cache.stats c in
  checki "entries" 2 s.Server.Cache.entries;
  checki "evictions" 1 s.Server.Cache.evictions;
  checki "hits" 2 s.Server.Cache.hits;
  checki "misses" 1 s.Server.Cache.misses

let test_cache_bytes_bound () =
  let c = Server.Cache.create ~max_entries:100 ~max_bytes:10 () in
  Server.Cache.add c "a" "aaaaa";
  Server.Cache.add c "b" "bbbbb";
  Server.Cache.add c "c" "c";
  (* 5 + 5 + 1 > 10: "a" (least recent) must have been evicted. *)
  checkb "a evicted by byte bound" true (Server.Cache.find c "a" = None);
  checkb "c present" true (Server.Cache.find c "c" = Some "c");
  let s = Server.Cache.stats c in
  checkb "bytes within bound" true (s.Server.Cache.bytes <= 10);
  (* An entry alone bigger than the bound is not stored at all. *)
  Server.Cache.add c "huge" (String.make 64 'x');
  checkb "oversize entry skipped" true (Server.Cache.find c "huge" = None)

let test_cache_replace () =
  let c = Server.Cache.create ~max_entries:4 ~max_bytes:1000 () in
  Server.Cache.add c "k" "old";
  Server.Cache.add c "k" "new";
  checkb "replaced" true (Server.Cache.find c "k" = Some "new");
  checki "one entry" 1 (Server.Cache.stats c).Server.Cache.entries

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let test_scheduler_basic () =
  let s = Server.Scheduler.create ~workers:2 ~capacity:4 () in
  checkb "computes" true (Server.Scheduler.run s (fun () -> 6 * 7) = Ok 42);
  checkb "exception becomes Failed" true
    (match Server.Scheduler.run s (fun () -> failwith "boom") with
    | Error (Server.Scheduler.Failed msg) -> msg = "Failure(\"boom\")" || String.length msg > 0
    | _ -> false);
  (* The pool survives a failed job. *)
  checkb "still computes after failure" true (Server.Scheduler.run s (fun () -> 1) = Ok 1);
  checkb "past deadline dropped" true
    (Server.Scheduler.run s ~deadline:(Unix.gettimeofday () -. 1.) (fun () -> 1)
    = Error Server.Scheduler.Deadline_exceeded);
  checkb "cancelled dropped" true
    (Server.Scheduler.run s ~cancelled:(fun () -> true) (fun () -> 1)
    = Error Server.Scheduler.Cancelled);
  let st = Server.Scheduler.stats s in
  checki "deadline drops counted" 1 st.Server.Scheduler.deadline_drops;
  checki "cancel drops counted" 1 st.Server.Scheduler.cancelled_drops;
  checki "idle depth" 0 st.Server.Scheduler.depth;
  Server.Scheduler.shutdown s;
  checkb "after shutdown" true
    (Server.Scheduler.run s (fun () -> 1) = Error Server.Scheduler.Shutting_down)

let test_scheduler_load_shed () =
  let s = Server.Scheduler.create ~workers:1 ~capacity:1 () in
  let m = Mutex.create () in
  let cond = Condition.create () in
  let started = ref false in
  let release = ref false in
  let blocker () =
    Mutex.lock m;
    started := true;
    Condition.broadcast cond;
    while not !release do
      Condition.wait cond m
    done;
    Mutex.unlock m;
    "done"
  in
  let result = ref (Error Server.Scheduler.Overloaded) in
  let th = Thread.create (fun () -> result := Server.Scheduler.run s blocker) () in
  (* Wait until the blocker actually occupies the only slot. *)
  Mutex.lock m;
  while not !started do
    Condition.wait cond m
  done;
  Mutex.unlock m;
  (* Slot taken, capacity 1: the next request is shed immediately. *)
  checkb "overloaded" true
    (Server.Scheduler.run s (fun () -> "never") = Error Server.Scheduler.Overloaded);
  checki "shed counted" 1 (Server.Scheduler.stats s).Server.Scheduler.shed;
  Mutex.lock m;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock m;
  Thread.join th;
  checkb "blocked request completed" true (!result = Ok "done");
  checki "depth back to zero" 0 (Server.Scheduler.stats s).Server.Scheduler.depth;
  Server.Scheduler.shutdown s

(* ------------------------------------------------------------------ *)
(* Service: socket-free endpoint behaviour                             *)

let with_service ?(workers = 2) f =
  let t = S.create ~workers ~capacity:8 () in
  Fun.protect ~finally:(fun () -> S.shutdown t) (fun () -> f t)

let payload t req = (S.handle t (T.string_of_json (T.Jobj req))).S.payload

let json t req = T.json_of_string (payload t req)

let is_ok j = T.member "ok" j = Some (T.Jbool true)

let error_tag j = match T.member "error" j with Some (T.Jstr e) -> e | _ -> "?"
let code_of j = match T.member "code" j with Some (T.Jint c) -> c | _ -> -1

let test_service_ping_version () =
  with_service (fun t ->
      let j = json t [ ("op", T.Jstr "ping") ] in
      checkb "ok" true (is_ok j);
      checkb "version" true (T.member "version" j = Some (T.Jstr Stdx.Version.current)))

let test_service_list () =
  with_service (fun t ->
      let j = json t [ ("op", T.Jstr "list") ] in
      checkb "ok" true (is_ok j);
      let ids =
        match T.member "experiments" j with
        | Some (T.Jarr es) ->
            List.filter_map (fun e -> match T.member "id" e with Some (T.Jstr s) -> Some s | _ -> None) es
        | _ -> []
      in
      checkb "catalogue has claim31" true (List.mem "claim31" ids);
      checkb "catalogue matches registry" true
        (List.length ids = List.length (Core.Exp_all.all ()));
      match T.member "protocols" j with
      | Some (T.Jarr ps) -> checki "protocol catalogue" (List.length Server.Simulate.protocols) (List.length ps)
      | _ -> Alcotest.fail "no protocols field")

let test_service_errors () =
  with_service (fun t ->
      let expect name req error code =
        let j = json t req in
        checkb (name ^ " not ok") false (is_ok j);
        checks (name ^ " tag") error (error_tag j);
        checki (name ^ " code") code (code_of j)
      in
      expect "unknown op" [ ("op", T.Jstr "frobnicate") ] "not-found" 404;
      expect "missing op" [ ("x", T.Jint 1) ] "bad-request" 400;
      expect "unknown id" [ ("op", T.Jstr "run"); ("id", T.Jstr "nope") ] "not-found" 404;
      expect "unknown param"
        [ ("op", T.Jstr "run"); ("id", T.Jstr "claim31"); ("params", T.Jobj [ ("zap", T.Jint 1) ]) ]
        "bad-request" 400;
      expect "wrong param type"
        [ ("op", T.Jstr "run"); ("id", T.Jstr "claim31"); ("params", T.Jobj [ ("m", T.Jint 5) ]) ]
        "bad-request" 400;
      (* Unknown protocol: a client mistake, so 400, and the message must
         list every valid id so the client can self-correct. *)
      expect "unknown protocol" [ ("op", T.Jstr "simulate"); ("protocol", T.Jstr "psychic") ]
        "bad-request" 400;
      (let j = json t [ ("op", T.Jstr "simulate"); ("protocol", T.Jstr "psychic") ] in
       let msg = match T.member "msg" j with Some (T.Jstr m) -> m | _ -> "" in
       let contains s sub =
         let ls = String.length s and lsub = String.length sub in
         let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
         lsub = 0 || go 0
       in
       List.iter
         (fun (name, _) ->
           checkb ("unknown-protocol msg lists " ^ name) true (contains msg name))
         Server.Simulate.protocols);
      expect "bad graph"
        [ ("op", T.Jstr "simulate");
          ("protocol", T.Jstr "trivial-mm");
          ("graph", T.Jobj [ ("kind", T.Jstr "donut"); ("n", T.Jint 4) ]) ]
        "bad-request" 400;
      (* A graph protocol cannot run on a hypergraph input. *)
      expect "incompatible input"
        [ ("op", T.Jstr "simulate");
          ("protocol", T.Jstr "trivial-mm");
          ("graph",
           T.Jobj [ ("kind", T.Jstr "hyperk"); ("n", T.Jint 9); ("m", T.Jint 4); ("k", T.Jint 3) ]) ]
        "bad-request" 400;
      let j = T.json_of_string (S.handle t "this is not json").S.payload in
      checks "garbage payload" "bad-request" (error_tag j))

let smoke_run ?(extra = []) t =
  payload t ([ ("op", T.Jstr "run"); ("id", T.Jstr "claim31"); ("smoke", T.Jbool true) ] @ extra)

let test_service_cache_determinism () =
  with_service (fun t ->
      let p1 = smoke_run t in
      let p2 = smoke_run t in
      checkb "first ok" true (is_ok (T.json_of_string p1));
      checks "byte-identical payloads" p1 p2;
      let c = Server.Cache.stats (S.cache t) in
      checki "one miss" 1 c.Server.Cache.misses;
      checki "one hit" 1 c.Server.Cache.hits;
      (* [jobs] only affects scheduling, never rows: it is excluded from
         the cache key, so a different job count is a third hit. *)
      let p3 = smoke_run ~extra:[ ("jobs", T.Jint 2) ] t in
      checks "jobs does not change the payload" p1 p3;
      checki "jobs shares the entry" 2 (Server.Cache.stats (S.cache t)).Server.Cache.hits)

let test_service_seed_precedence () =
  with_service (fun t ->
      let j = T.json_of_string (smoke_run ~extra:[ ("seed", T.Jint 3) ] t) in
      match T.member "params" j with
      | Some params -> checkb "explicit seed beats smoke" true (T.member "seed" params = Some (T.Jint 3))
      | None -> Alcotest.fail "no params echoed")

(* The acceptance pin: a served simulate response reports exactly the
   max_bits/total_bits an in-process run of the same (protocol, graph,
   coins) triple produces — the service adds caching and transport,
   never arithmetic. *)
let test_service_simulate_bits () =
  with_service (fun t ->
      let gspec = Server.Simulate.Gnp { n = 40; p = 0.15 } in
      let seed = 11 in
      List.iter
        (fun (protocol, _) ->
          let spec = { Server.Simulate.protocol; graph = gspec; seed } in
          let g = Server.Simulate.graph_of_spec spec in
          let coins = Server.Simulate.coins seed in
          let multipass_bits (s : Multipass.Rounds.stats) =
            (s.Multipass.Rounds.max_bits, s.Multipass.Rounds.total_bits)
          in
          let expect_max, expect_total =
            match protocol with
            | "trivial-mm" ->
                let _, s = Sketchmodel.Model.run Protocols.Trivial.mm g coins in
                (s.Sketchmodel.Model.max_bits, s.Sketchmodel.Model.total_bits)
            | "trivial-mis" ->
                let _, s = Sketchmodel.Model.run Protocols.Trivial.mis g coins in
                (s.Sketchmodel.Model.max_bits, s.Sketchmodel.Model.total_bits)
            | "local-minima" ->
                let _, s = Sketchmodel.Model.run Protocols.One_round_mis.local_minima g coins in
                (s.Sketchmodel.Model.max_bits, s.Sketchmodel.Model.total_bits)
            | "two-round-mm" ->
                let _, s = Protocols.Two_round_mm.run g coins in
                (s.Sketchmodel.Rounds.max_bits, s.Sketchmodel.Rounds.total_bits)
            | "two-round-mis" ->
                let _, s = Protocols.Two_round_mis.run g coins in
                (s.Sketchmodel.Rounds.max_bits, s.Sketchmodel.Rounds.total_bits)
            | "hyper-trivial-mm" ->
                let h = Server.Simulate.hypergraph_of_spec spec in
                let _, s = Protocols.Hyper_mm.run_trivial h coins in
                (s.Sketchmodel.Model.max_bits, s.Sketchmodel.Model.total_bits)
            | "hyper-iterated-mm" ->
                let h = Server.Simulate.hypergraph_of_spec spec in
                let _, s = Protocols.Hyper_mm.run_iterated h coins in
                (s.Protocols.Hyper_views.max_bits, s.Protocols.Hyper_views.total_bits)
            | "hyper-local-minima-mis" ->
                let h = Server.Simulate.hypergraph_of_spec spec in
                let _, s = Protocols.Hyper_mis.run_local_minima h coins in
                (s.Sketchmodel.Model.max_bits, s.Sketchmodel.Model.total_bits)
            | "hyper-luby-mis" ->
                let h = Server.Simulate.hypergraph_of_spec spec in
                let _, s = Protocols.Hyper_mis.run_luby h coins in
                (s.Protocols.Hyper_views.max_bits, s.Protocols.Hyper_views.total_bits)
            | "prefix-mis-r4" ->
                let _, s = Multipass.Frontier.run ~rounds:4 g coins in
                multipass_bits s
            | "luby-mis-random" ->
                let _, s = Multipass.Luby.run Multipass.Luby.Random g coins in
                multipass_bits s
            | "luby-mis-degree" ->
                let _, s = Multipass.Luby.run Multipass.Luby.Degree g coins in
                multipass_bits s
            | "luby-mis-index" ->
                let _, s = Multipass.Luby.run Multipass.Luby.Index g coins in
                multipass_bits s
            | "stream-matching" ->
                (* Pass accounting, not bit accounting: checked below
                   against peak_memory_bits/passes instead. *)
                (-1, -1)
            | p -> Alcotest.fail ("catalogue grew a protocol the test does not know: " ^ p)
          in
          let j =
            json t
              [
                ("op", T.Jstr "simulate");
                ("protocol", T.Jstr protocol);
                ("graph", Server.Simulate.json_of_gspec gspec);
                ("seed", T.Jint seed);
              ]
          in
          checkb (protocol ^ " ok") true (is_ok j);
          match T.member "stats" j with
          | Some stats when protocol = "stream-matching" ->
              let stream = Streams.Stream.shuffled (Server.Simulate.stream_rng seed) g in
              let res = Multipass.Stream_matching.run ~eps:0.25 stream in
              checkb (protocol ^ " passes") true
                (T.member "passes" stats
                = Some (T.Jint (List.length res.Multipass.Stream_matching.passes)));
              checkb (protocol ^ " peak_memory_bits") true
                (T.member "peak_memory_bits" stats
                = Some (T.Jint res.Multipass.Stream_matching.peak_memory_bits))
          | Some stats ->
              checkb (protocol ^ " max_bits") true (T.member "max_bits" stats = Some (T.Jint expect_max));
              checkb (protocol ^ " total_bits") true
                (T.member "total_bits" stats = Some (T.Jint expect_total))
          | None -> Alcotest.fail (protocol ^ ": no stats field"))
        Server.Simulate.protocols)

(* Cached replay of a hyperk simulate: the second request must be served
   from the LRU byte-for-byte, so the hypergraph pipeline (sampling,
   freeze, multi-round protocol) is fully deterministic under the
   service's seed discipline. *)
let test_service_simulate_hyperk_cached () =
  with_service (fun t ->
      let req =
        [
          ("op", T.Jstr "simulate");
          ("protocol", T.Jstr "hyper-iterated-mm");
          ("graph",
           T.Jobj [ ("kind", T.Jstr "hyperk"); ("n", T.Jint 30); ("m", T.Jint 20); ("k", T.Jint 3) ]);
          ("seed", T.Jint 5);
        ]
      in
      let c0 = Server.Cache.stats (S.cache t) in
      let p1 = payload t req in
      let p2 = payload t req in
      checkb "hyperk simulate ok" true (is_ok (T.json_of_string p1));
      checks "cached replay byte-identical" p1 p2;
      let c1 = Server.Cache.stats (S.cache t) in
      checki "one miss" (c0.Server.Cache.misses + 1) c1.Server.Cache.misses;
      checki "one hit" (c0.Server.Cache.hits + 1) c1.Server.Cache.hits;
      match T.member "stats" (T.json_of_string p1) with
      | Some stats ->
          checkb "multi-round stats" true (T.member "rounds" stats <> None);
          checkb "broadcast accounted" true (T.member "broadcast_bits" stats <> None)
      | None -> Alcotest.fail "hyperk simulate: no stats field")

(* Same discipline for the multipass wing: an r-round frontier run and a
   multi-pass streaming run must both replay from the LRU byte for byte,
   and their stats must carry the per-round / per-pass curves. *)
let test_service_simulate_multipass_cached () =
  with_service (fun t ->
      let gj = T.Jobj [ ("kind", T.Jstr "gnp"); ("n", T.Jint 32); ("p", T.Jfloat 0.2) ] in
      List.iter
        (fun (protocol, curve_field) ->
          let req =
            [
              ("op", T.Jstr "simulate");
              ("protocol", T.Jstr protocol);
              ("graph", gj);
              ("seed", T.Jint 9);
            ]
          in
          let c0 = Server.Cache.stats (S.cache t) in
          let p1 = payload t req in
          let p2 = payload t req in
          checkb (protocol ^ " ok") true (is_ok (T.json_of_string p1));
          checks (protocol ^ " cached replay byte-identical") p1 p2;
          let c1 = Server.Cache.stats (S.cache t) in
          checki (protocol ^ " one miss") (c0.Server.Cache.misses + 1) c1.Server.Cache.misses;
          checki (protocol ^ " one hit") (c0.Server.Cache.hits + 1) c1.Server.Cache.hits;
          match T.member "stats" (T.json_of_string p1) with
          | Some stats -> (
              match T.member curve_field stats with
              | Some (T.Jarr (_ :: _)) -> ()
              | _ -> Alcotest.fail (protocol ^ ": stats lack a non-empty " ^ curve_field))
          | None -> Alcotest.fail (protocol ^ ": no stats field"))
        [
          ("prefix-mis-r4", "round_max");
          ("luby-mis-degree", "round_broadcast");
          ("stream-matching", "pass_memory_bits");
        ])

let test_service_shutdown_op () =
  with_service (fun t ->
      let reply = S.handle t "{\"op\":\"shutdown\"}" in
      checkb "shutdown flagged" true reply.S.shutdown;
      checkb "shutdown acked ok" true (is_ok (T.json_of_string reply.S.payload));
      checkb "draining" true (S.draining t))

(* ------------------------------------------------------------------ *)
(* Daemon: real sockets, hostile clients                               *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let test_daemon_survives_abuse () =
  let d = Server.Daemon.start ~workers:1 ~capacity:4 () in
  let port = Server.Daemon.port d in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.stop ~abort_connections:true d;
      Server.Daemon.wait d)
    (fun () ->
      (* 1. Garbage framing: nine 0xff bytes exhaust the header budget
         with nothing left unread, so the server's one error frame and
         FIN arrive cleanly (unread bytes would turn the close into an
         RST that may discard the reply — that path is best-effort). *)
      let fd = connect port in
      send_all fd (String.make 9 '\xff');
      (match W.read_frame fd with
      | frame ->
          checks "malformed tagged" "malformed-frame"
            (error_tag (T.json_of_string frame))
      | exception W.Closed -> Alcotest.fail "no error frame for garbage");
      checkb "connection closed after garbage" true
        (match W.read_frame fd with _ -> false | exception W.Closed -> true);
      Unix.close fd;
      (* 2. Oversized declaration: rejected before any payload is read. *)
      let fd = connect port in
      let w = Stdx.Bitbuf.Writer.create () in
      Stdx.Bitbuf.Writer.uvarint w (W.max_frame + 1);
      let bytes, _ = Stdx.Bitbuf.Writer.contents w in
      send_all fd (Bytes.to_string bytes);
      (match W.read_frame fd with
      | frame -> checks "oversized tagged" "oversized-frame" (error_tag (T.json_of_string frame))
      | exception W.Closed -> Alcotest.fail "no error frame for oversized");
      Unix.close fd;
      (* 3. Mid-request disconnect: half a frame, then vanish. *)
      let fd = connect port in
      let frame = W.encode "{\"op\":\"ping\"}" in
      send_all fd (String.sub frame 0 (String.length frame - 3));
      Unix.close fd;
      (* 4. The daemon still serves, and no worker slot leaked. *)
      let response =
        Server.Client.with_connection ~port (fun c -> Server.Client.request c "{\"op\":\"stats\"}")
      in
      let j = T.json_of_string response in
      checkb "still serving" true (is_ok j);
      (match T.member "queue" j with
      | Some q -> checkb "no leaked slots" true (T.member "depth" q = Some (T.Jint 0))
      | None -> Alcotest.fail "no queue stats");
      (* 5. A full well-formed cycle still round-trips byte-exactly. *)
      let run () =
        Server.Client.with_connection ~port (fun c ->
            Server.Client.request c
              (T.string_of_json
                 (T.Jobj
                    [ ("op", T.Jstr "run"); ("id", T.Jstr "claim31"); ("smoke", T.Jbool true) ])))
      in
      let p1 = run () and p2 = run () in
      checks "served payloads byte-identical" p1 p2)

let test_daemon_shutdown_rpc () =
  let d = Server.Daemon.start ~workers:1 ~capacity:4 () in
  let port = Server.Daemon.port d in
  let reply =
    Server.Client.with_connection ~port (fun c -> Server.Client.request c "{\"op\":\"shutdown\"}")
  in
  checkb "shutdown acked" true (is_ok (T.json_of_string reply));
  (* wait must return: the accept loop wakes via the self-pipe even though
     nothing ever connects again. *)
  Server.Daemon.wait d;
  checkb "port closed after shutdown" true
    (match connect port with
    | fd ->
        (* A connect may still succeed in the accept backlog race; a read
           must then see an immediate close. *)
        let closed = match W.read_frame fd with _ -> false | exception _ -> true in
        Unix.close fd;
        closed
    | exception Unix.Unix_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Proxy vs. hostile backends                                          *)

(* A scriptable fake backend: a raw listener handing each connection's fd
   to [serve] on its own thread — for replies no honest sketchd would
   send. The accept thread is not joined (closing a listening fd does not
   reliably wake accept(2)); it idles harmlessly for the test process's
   lifetime. *)
let start_fake serve =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 16;
  let port = match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false in
  let rec accept_loop () =
    match Unix.accept fd with
    | c, _ ->
        ignore
          (Thread.create
             (fun () ->
               (try serve c with _ -> ());
               try Unix.close c with Unix.Unix_error _ -> ())
             ());
        accept_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  ignore (Thread.create accept_loop ());
  (Printf.sprintf "127.0.0.1:%d" port, fun () -> try Unix.close fd with Unix.Unix_error _ -> ())

let sim_payload seed =
  Printf.sprintf
    "{\"op\":\"simulate\",\"protocol\":\"trivial-mm\",\"graph\":{\"kind\":\"path\",\"n\":8},\"seed\":%d}"
    seed

(* A seed whose ring successor order visits both fakes before the real
   backend, so the failover chain is actually exercised. *)
let seed_with_order ring order =
  let rec go s =
    if s > 20_000 then Alcotest.fail "no seed with the wanted successor order"
    else
      match Server.Service.request_key (T.json_of_string (sim_payload s)) with
      | Some k when Server.Ring.successors ring k = order -> s
      | _ -> go (s + 1)
  in
  go 0

let test_proxy_truncated_backend () =
  (* Both fakes read the request, then die mid-frame: a header declaring
     100 bytes followed by 10 and a close. The proxy must fail over down
     the chain and relay the real backend's response. *)
  let truncate c =
    match W.read_frame c with
    | _ ->
        let w = Stdx.Bitbuf.Writer.create () in
        Stdx.Bitbuf.Writer.uvarint w 100;
        let bytes, _ = Stdx.Bitbuf.Writer.contents w in
        send_all c (Bytes.to_string bytes ^ String.make 10 'x')
    | exception _ -> ()
  in
  let f1, stop1 = start_fake truncate in
  let f2, stop2 = start_fake truncate in
  let d = Server.Daemon.start ~workers:1 ~capacity:8 () in
  let real = Printf.sprintf "127.0.0.1:%d" (Server.Daemon.port d) in
  let p = Server.Proxy.create ~backends:[ f1; f2; real ] () in
  Fun.protect
    ~finally:(fun () ->
      Server.Proxy.close p;
      stop1 ();
      stop2 ();
      Server.Daemon.stop ~abort_connections:true d;
      Server.Daemon.wait d)
  @@ fun () ->
  let seed = seed_with_order (Server.Proxy.ring p) [ f1; f2; real ] in
  let r = (Server.Proxy.handle p (sim_payload seed)).S.payload in
  checkb "relayed past two truncating backends" true (is_ok (T.json_of_string r));
  checkb "first fake marked down" false (Server.Health.healthy (Server.Proxy.health p) f1);
  checkb "second fake marked down" false (Server.Health.healthy (Server.Proxy.health p) f2);
  checkb "real backend healthy" true (Server.Health.healthy (Server.Proxy.health p) real);
  (* The survivor's answer is the canonical one. *)
  let direct =
    Server.Client.with_connection ~port:(Server.Daemon.port d) (fun c ->
        Server.Client.request c (sim_payload seed))
  in
  checks "failover response is the canonical payload" direct r

let test_proxy_oversized_backend_header () =
  (* Ten 0xff continuation bytes exceed the frame header budget: the
     proxy's client read must reject it as malformed, not stall or
     over-allocate, and fail over. *)
  let oversized c =
    match W.read_frame c with
    | _ -> send_all c (String.make 10 '\xff')
    | exception _ -> ()
  in
  let f1, stop1 = start_fake oversized in
  let d = Server.Daemon.start ~workers:1 ~capacity:8 () in
  let real = Printf.sprintf "127.0.0.1:%d" (Server.Daemon.port d) in
  let p = Server.Proxy.create ~backends:[ f1; real ] () in
  Fun.protect
    ~finally:(fun () ->
      Server.Proxy.close p;
      stop1 ();
      Server.Daemon.stop ~abort_connections:true d;
      Server.Daemon.wait d)
  @@ fun () ->
  let seed = seed_with_order (Server.Proxy.ring p) [ f1; real ] in
  let r = (Server.Proxy.handle p (sim_payload seed)).S.payload in
  checkb "served despite hostile header" true (is_ok (T.json_of_string r));
  checkb "hostile backend marked down" false
    (Server.Health.healthy (Server.Proxy.health p) f1);
  (match List.assoc_opt f1 (Server.Health.snapshot (Server.Proxy.health p)) with
  | Some s -> (
      match s.Server.Health.last_error with
      | Some e ->
          checkb "failure reason mentions framing" true
            (String.length e > 0
            && (let lower = String.lowercase_ascii e in
                let contains sub =
                  let n = String.length lower and m = String.length sub in
                  let rec at i = i + m <= n && (String.sub lower i m = sub || at (i + 1)) in
                  at 0
                in
                contains "malformed" || contains "frame"))
      | None -> Alcotest.fail "downed backend must keep its last error")
  | None -> Alcotest.fail "backend missing from health snapshot")

let test_proxy_429_storm_backoff () =
  (* Every backend sheds on every request. The proxy must back off between
     replicas (not hammer them in a tight loop), stay convinced they are
     alive (shedding is load, not death), and relay the final 429. *)
  let shed_response =
    "{\"ok\":false,\"error\":\"overloaded\",\"code\":429,\"msg\":\"queue full; retry later\"}"
  in
  let shedding c =
    let rec serve () =
      match W.read_frame c with
      | _ ->
          W.write_frame c shed_response;
          serve ()
      | exception _ -> ()
    in
    serve ()
  in
  let f1, stop1 = start_fake shedding in
  let f2, stop2 = start_fake shedding in
  let backoff_ms = 40 in
  let p = Server.Proxy.create ~shed_backoff_ms:backoff_ms ~backends:[ f1; f2 ] () in
  Fun.protect
    ~finally:(fun () ->
      Server.Proxy.close p;
      stop1 ();
      stop2 ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let r = (Server.Proxy.handle p (sim_payload 1)).S.payload in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let j = T.json_of_string r in
  checks "storm relays the shed response" "overloaded" (error_tag j);
  checki "storm relays 429" 429 (code_of j);
  (* One backoff pause between the two replicas. *)
  checkb "proxy backed off between replicas" true
    (elapsed_ms >= float_of_int backoff_ms *. 0.9);
  checkb "shedding backends stay healthy" true
    (Server.Health.healthy (Server.Proxy.health p) f1
    && Server.Health.healthy (Server.Proxy.health p) f2)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "stream" `Quick test_wire_stream;
          Alcotest.test_case "hostile input" `Quick test_wire_hostile;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "byte bound" `Quick test_cache_bytes_bound;
          Alcotest.test_case "replace" `Quick test_cache_replace;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "drop paths" `Quick test_scheduler_basic;
          Alcotest.test_case "load shedding" `Quick test_scheduler_load_shed;
        ] );
      ( "service",
        [
          Alcotest.test_case "ping version" `Quick test_service_ping_version;
          Alcotest.test_case "list catalogue" `Quick test_service_list;
          Alcotest.test_case "error taxonomy" `Quick test_service_errors;
          Alcotest.test_case "cache determinism" `Quick test_service_cache_determinism;
          Alcotest.test_case "seed precedence" `Quick test_service_seed_precedence;
          Alcotest.test_case "simulate = library bits" `Quick test_service_simulate_bits;
          Alcotest.test_case "hyperk simulate cached replay" `Quick
            test_service_simulate_hyperk_cached;
          Alcotest.test_case "multipass simulate cached replay" `Quick
            test_service_simulate_multipass_cached;
          Alcotest.test_case "shutdown op" `Quick test_service_shutdown_op;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "survives hostile clients" `Quick test_daemon_survives_abuse;
          Alcotest.test_case "shutdown rpc stops accept loop" `Quick test_daemon_shutdown_rpc;
        ] );
      ( "proxy-hostile",
        [
          Alcotest.test_case "truncated backend frames mid-failover" `Quick
            test_proxy_truncated_backend;
          Alcotest.test_case "oversized backend header" `Quick
            test_proxy_oversized_backend_header;
          Alcotest.test_case "429 storm backs off and relays" `Quick
            test_proxy_429_storm_backoff;
        ] );
    ]

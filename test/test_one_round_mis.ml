(* Tests for Protocols.One_round_mis: the one-round attempts the lower
   bound dooms. *)

module OR = Protocols.One_round_mis
module Model = Sketchmodel.Model
module PC = Sketchmodel.Public_coins
module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_local_minima_always_independent () =
  let rng = Stdx.Prng.create 1 in
  for seed = 1 to 20 do
    let g = Dgraph.Gen.gnp rng 40 0.2 in
    let set, _ = Model.run OR.local_minima g (PC.create seed) in
    checkb "independent" true (Dgraph.Mis.is_independent g set)
  done

let test_local_minima_one_bit () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 2) 50 0.3 in
  let _, stats = Model.run OR.local_minima g (PC.create 3) in
  checki "exactly one bit per player" 1 stats.Model.max_bits;
  checki "total = n" 50 stats.Model.total_bits

let test_local_minima_rarely_maximal () =
  (* On paths (sparse), local minima leave a constant fraction
     undominated: the failure Theorem 2 guarantees must show up. *)
  let failures = ref 0 in
  for seed = 1 to 20 do
    let g = Dgraph.Gen.path 60 in
    let frac, _ = OR.undominated_fraction g (PC.create (seed * 11)) in
    if frac > 0. then incr failures
  done;
  checkb (Printf.sprintf "non-maximal in %d/20 runs" !failures) true (!failures >= 18)

let test_local_minima_on_empty_and_complete () =
  (* Empty graph: every vertex is a local min -> full set, maximal. *)
  let g = G.empty 10 in
  let set, _ = Model.run OR.local_minima g (PC.create 4) in
  checki "all isolated vertices chosen" 10 (List.length set);
  (* Complete graph: exactly one local min -> maximal. *)
  let kg = Dgraph.Gen.complete 9 in
  let kset, _ = Model.run OR.local_minima kg (PC.create 5) in
  checki "single winner" 1 (List.length kset);
  checkb "maximal on K9" true (Dgraph.Mis.is_maximal kg kset)

let test_undominated_fraction_range () =
  let rng = Stdx.Prng.create 6 in
  for seed = 1 to 10 do
    let g = Dgraph.Gen.gnp rng 50 0.1 in
    let frac, _ = OR.undominated_fraction g (PC.create seed) in
    checkb "fraction in [0,1)" true (frac >= 0. && frac < 1.)
  done

let test_budgeted_zero_claims_everything () =
  (* With no reported edges the referee picks every vertex: independent
     only on empty graphs — the "not independent" error mode. *)
  let g = Dgraph.Gen.cycle 6 in
  let set, stats = Model.run (OR.budgeted ~budget_bits:0) g (PC.create 7) in
  checki "no bits" 0 stats.Model.max_bits;
  checki "claims all" 6 (List.length set);
  checkb "not independent" false (Dgraph.Mis.is_independent g set)

let test_budgeted_full_budget_correct () =
  let rng = Stdx.Prng.create 8 in
  for seed = 1 to 10 do
    let g = Dgraph.Gen.gnp rng 30 0.25 in
    let set, _ = Model.run (OR.budgeted ~budget_bits:100000) g (PC.create seed) in
    checkb "maximal IS with full reports" true (Dgraph.Mis.is_maximal g set)
  done

let test_budgeted_budget_respected () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 9) 60 0.5 in
  List.iter
    (fun b ->
      let _, stats = Model.run (OR.budgeted ~budget_bits:b) g (PC.create 10) in
      checkb (Printf.sprintf "b=%d" b) true (stats.Model.max_bits <= b))
    [ 0; 8; 33; 128 ]

let test_budgeted_error_modes_tracked () =
  (* Mid budgets can err on either side; verify the verdict decomposition
     runs and the output at least never contains out-of-range ids. *)
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 11) 40 0.3 in
  let set, _ = Model.run (OR.budgeted ~budget_bits:24) g (PC.create 12) in
  checkb "ids in range" true (List.for_all (fun v -> v >= 0 && v < 40) set);
  let verdict = Dgraph.Mis.verify g set in
  checkb "verdict computable" true (verdict.Dgraph.Mis.independent || true)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"local minima independent on random graphs" ~count:80
         QCheck.(pair (int_range 1 40) (int_range 0 10000))
         (fun (n, seed) ->
           let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) n 0.3 in
           let set, _ = Model.run OR.local_minima g (PC.create (seed + 1)) in
           Dgraph.Mis.is_independent g set));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"budgeted output deterministic given coins" ~count:40
         QCheck.(pair (int_range 1 30) (int_range 0 10000))
         (fun (n, seed) ->
           let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) n 0.3 in
           let a, _ = Model.run (OR.budgeted ~budget_bits:32) g (PC.create 5) in
           let b, _ = Model.run (OR.budgeted ~budget_bits:32) g (PC.create 5) in
           a = b));
  ]

let () =
  Alcotest.run "one_round_mis"
    [
      ( "local-minima",
        [
          Alcotest.test_case "always independent" `Quick test_local_minima_always_independent;
          Alcotest.test_case "one bit" `Quick test_local_minima_one_bit;
          Alcotest.test_case "rarely maximal" `Quick test_local_minima_rarely_maximal;
          Alcotest.test_case "empty and complete" `Quick test_local_minima_on_empty_and_complete;
          Alcotest.test_case "undominated fraction range" `Quick test_undominated_fraction_range;
        ] );
      ( "budgeted",
        [
          Alcotest.test_case "zero budget" `Quick test_budgeted_zero_claims_everything;
          Alcotest.test_case "full budget correct" `Quick test_budgeted_full_budget_correct;
          Alcotest.test_case "budget respected" `Quick test_budgeted_budget_respected;
          Alcotest.test_case "error modes" `Quick test_budgeted_error_modes_tracked;
        ] );
      ("one-round-mis-properties", qcheck_tests);
    ]

(* Byte-identity against pre-refactor terminal output: golden/<id>.txt
   holds the exact bytes the monolithic Experiments print functions
   produced at the parameters below (captured before the registry split).
   Rendering the same experiment through Exp_registry.table + Tabular's
   text renderer must reproduce every file byte for byte.

   The speedup table (P1) is excluded: its cells are wall-clock times. *)

module R = Core.Exp_registry
module T = Report.Tabular

let vi i = R.Vint i
let vl l = R.Vints l

(* id -> the overrides the goldens were captured with. Monte-Carlo tables
   pin jobs=1; the engine is bit-identical at any job count, so this only
   fixes the wall-clock, not the cells. *)
let captures =
  [
    ("rs-table", [ ("m", vl [ 5; 10; 25 ]) ]);
    ("behrend", [ ("m", vl [ 10; 30; 100 ]) ]);
    ( "claim31",
      [ ("m", vl [ 5; 10 ]); ("samples", vi 4); ("seed", vi 7); ("jobs", vi 1) ] );
    ( "budget-sweep",
      [ ("m", vi 5); ("budgets", vl [ 8; 64 ]); ("trials", vi 2); ("seed", vi 11); ("jobs", vi 1) ]
    );
    ("info-accounting", [ ("bits", vl [ 2 ]) ]);
    ("upper-bounds", [ ("n", vl [ 48; 64 ]); ("seed", vi 3) ]);
    ("coloring-contrast", [ ("n", vl [ 128; 192 ]); ("seed", vi 19) ]);
    ("bound-curve", [ ("m", vl [ 5; 20 ]) ]);
    ("reduction", [ ("m", vl [ 4 ]); ("samples", vi 2); ("seed", vi 23) ]);
    ( "bridge",
      [ ("halves", vl [ 24 ]); ("samples", vl [ 2 ]); ("trials", vi 4); ("seed", vi 29) ] );
    ( "approx-matching",
      [ ("n", vl [ 24 ]); ("budgets", vl [ 16 ]); ("trials", vi 2); ("seed", vi 31) ] );
    ( "k-sweep",
      [
        ("m", vi 5);
        ("k", vl [ 2; 5 ]);
        ("budgets", vl [ 8; 64 ]);
        ("trials", vi 2);
        ("seed", vi 37);
      ] );
    ("streams", [ ("n", vl [ 20 ]); ("seed", vi 41) ]);
    ("connectivity", [ ("seed", vi 43) ]);
    ("rounds", [ ("m", vl [ 5 ]); ("seed", vi 47) ]);
    ("packing", [ ("m", vl [ 4; 5 ]); ("tries", vi 200); ("seed", vi 53); ("jobs", vi 1) ]);
    ( "estimate-info",
      [ ("bits", vl [ 4 ]); ("samples", vi 300); ("seed", vi 59); ("jobs", vi 1) ] );
    ( "yao",
      [ ("m", vi 5); ("budgets", vl [ 24 ]); ("instances", vi 4); ("seeds", vi 2); ("seed", vi 61) ]
    );
    ("bcc", [ ("m", vl [ 5 ]); ("trials", vi 2); ("seed", vi 67) ]);
    ("hypergraph-mm", [ ("n", vi 60); ("m", vi 40); ("k", vl [ 2; 3 ]); ("seed", vi 71) ]);
    ("round-frontier", [ ("m", vl [ 5 ]); ("rounds", vl [ 1; 2; 3 ]); ("seed", vi 53) ]);
    ("stream-matching", [ ("n", vl [ 24 ]); ("eps", vl [ 50; 25 ]); ("seed", vi 59) ]);
  ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_one (id, overrides) () =
  let e =
    match Core.Exp_all.find id with
    | Some e -> e
    | None -> Alcotest.failf "experiment %S not registered" id
  in
  let expected = read_file (Filename.concat "golden" (id ^ ".txt")) in
  let got = T.to_text (R.table e overrides) in
  if got <> expected then
    Alcotest.failf "%s: text output drifted from golden capture\n--- golden ---\n%s--- got ---\n%s"
      id expected got

let test_coverage () =
  (* Every registered experiment except the wall-clock one has a golden. *)
  let covered = List.map fst captures in
  List.iter
    (fun e ->
      let id = R.id e in
      if id <> "speedup" then
        Alcotest.(check bool) (id ^ " has a golden capture") true (List.mem id covered))
    (Core.Exp_all.all ())

let () =
  Alcotest.run "golden-tables"
    [
      ( "byte-identity",
        Alcotest.test_case "coverage" `Quick test_coverage
        :: List.map
             (fun (id, _) ->
               Alcotest.test_case id `Quick (test_one (id, List.assoc id captures)))
             captures );
    ]

(* Tests for the experiment registry: the catalogue is complete and
   unique, parameter merging rejects typos, and every registered
   experiment runs at its smoke sizes into a table that type-checks
   against its schema and survives the JSON round-trip. *)

module R = Core.Exp_registry
module T = Report.Tabular

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_catalogue () =
  let exps = Core.Exp_all.all () in
  let ids = R.ids () in
  checki "registry holds every Exp_all experiment" (List.length Core.Exp_all.experiments)
    (List.length exps);
  checkb "ids are unique" true (List.length (List.sort_uniq compare ids) = List.length ids);
  checkb "ids match registration order" true (List.map R.id exps = ids);
  List.iter
    (fun e ->
      match Core.Exp_all.find (R.id e) with
      | Some e' -> checkb (R.id e ^ " resolves to itself") true (R.id e' = R.id e)
      | None -> Alcotest.failf "find %S returned None" (R.id e))
    exps;
  checkb "unknown id is None" true (Core.Exp_all.find "no-such-experiment" = None)

let test_duplicate_id () =
  let e = List.hd Core.Exp_all.experiments in
  checkb "re-registering raises Duplicate_id" true
    (match R.register e with () -> false | exception R.Duplicate_id _ -> true)

let test_param_merge () =
  let e = List.hd Core.Exp_all.experiments in
  checkb "unknown override raises Unknown_param" true
    (match R.merge (R.params e) [ ("no-such-param", R.Vint 1) ] with
    | _ -> false
    | exception R.Unknown_param _ -> true);
  (* Every experiment exposes the uniform seed/jobs knobs. *)
  List.iter
    (fun e ->
      let names = List.map (fun (p : R.param) -> p.R.name) (R.params e) in
      checkb (R.id e ^ " has seed param") true (List.mem "seed" names);
      checkb (R.id e ^ " has jobs param") true (List.mem "jobs" names))
    (Core.Exp_all.all ())

(* Run each experiment at its tiny smoke parameters (pinned to one worker
   domain) and check the table against its schema. *)
let smoke_table e = R.table e (R.smoke e @ [ ("jobs", R.Vint 1) ])

let test_smoke_tables () =
  List.iter
    (fun e ->
      let tbl = smoke_table e in
      T.validate tbl;
      checkb (R.id e ^ " produces rows at smoke sizes") true (tbl.T.rows <> []))
    (Core.Exp_all.all ())

let test_json_round_trip () =
  (* Render every smoke row as tagged JSON, parse it back, map it onto the
     schema: identical values. Rows with non-finite floats are excluded —
     they serialize as null by design. *)
  let finite = function T.Float f -> Float.is_finite f | _ -> true in
  List.iter
    (fun e ->
      let tbl = smoke_table e in
      List.iter
        (fun row ->
          if List.for_all finite row then
            let line = T.json_of_row ~tag:("experiment", R.id e) tbl.T.schema row in
            checkb
              (R.id e ^ " row survives the JSON round-trip")
              true
              (T.row_of_json tbl.T.schema (T.json_of_string line) = row))
        tbl.T.rows)
    (Core.Exp_all.all ())

let () =
  Alcotest.run "registry"
    [
      ( "catalogue",
        [
          Alcotest.test_case "complete and unique" `Quick test_catalogue;
          Alcotest.test_case "duplicate id rejected" `Quick test_duplicate_id;
          Alcotest.test_case "param merge" `Quick test_param_merge;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "smoke tables validate" `Quick test_smoke_tables;
          Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
        ] );
    ]

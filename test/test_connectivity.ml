(* Tests for Agm.Connectivity: k-forest certificates and bipartiteness. *)

module C = Agm.Connectivity
module G = Dgraph.Graph
module PC = Sketchmodel.Public_coins

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let coins = PC.create 2024

let test_k_forests_valid () =
  List.iter
    (fun (name, g, k) ->
      let cert, _ = C.k_forests g ~k coins in
      checkb (name ^ " valid") true (C.certificate_valid g ~k cert);
      checki (name ^ " k forests") k (Array.length cert.C.forests))
    [
      ("cycle", Dgraph.Gen.cycle 10, 3);
      ("complete", Dgraph.Gen.complete 8, 4);
      ("path", Dgraph.Gen.path 7, 2);
      ("empty", G.empty 5, 2);
    ]

let test_first_forest_spanning () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 1) 30 0.2 in
  let cert, _ = C.k_forests g ~k:2 coins in
  checkb "F1 spans" true (Dgraph.Components.is_spanning_forest g cert.C.forests.(0))

let test_edge_connectivity_estimates () =
  List.iter
    (fun (name, g, k, expected) ->
      let cert, _ = C.k_forests g ~k coins in
      checki name expected (C.edge_connectivity_estimate cert ~k))
    [
      ("cycle is 2", Dgraph.Gen.cycle 9, 4, 2);
      ("path is 1", Dgraph.Gen.path 8, 3, 1);
      ("K6 capped at k=3", Dgraph.Gen.complete 6, 3, 3);
      ("K6 exact at k=5", Dgraph.Gen.complete 6, 5, 5);
      ("disconnected is 0", G.create 5 [ (0, 1); (2, 3) ], 2, 0);
    ]

let test_estimates_on_random_graphs () =
  let rng = Stdx.Prng.create 5 in
  for seed = 1 to 8 do
    let g = Dgraph.Gen.gnp rng 24 0.3 in
    let k = 3 in
    let cert, _ = C.k_forests g ~k (PC.create (seed * 31)) in
    let truth =
      let c = Dgraph.Mincut.min_cut g in
      if c = max_int then 0 else min k c
    in
    checkb "certificate valid" true (C.certificate_valid g ~k cert);
    checki (Printf.sprintf "estimate seed=%d" seed) truth (C.edge_connectivity_estimate cert ~k)
  done

let test_cost_scales_with_k () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 2) 24 0.3 in
  let _, s1 = C.k_forests g ~k:1 coins in
  let _, s3 = C.k_forests g ~k:3 coins in
  let b1 = s1.Sketchmodel.Model.max_bits and b3 = s3.Sketchmodel.Model.max_bits in
  checkb "3 stacks cost about 3x" true (b3 > 2 * b1 && b3 < 4 * b1)

let test_bipartite_exact () =
  checkb "even cycle" true (C.is_bipartite_exact (Dgraph.Gen.cycle 8));
  checkb "odd cycle" false (C.is_bipartite_exact (Dgraph.Gen.cycle 7));
  checkb "tree" true (C.is_bipartite_exact (Dgraph.Gen.path 9));
  checkb "K4" false (C.is_bipartite_exact (Dgraph.Gen.complete 4));
  checkb "empty" true (C.is_bipartite_exact (G.empty 4));
  checkb "bipartite random" true
    (C.is_bipartite_exact (Dgraph.Gen.random_bipartite (Stdx.Prng.create 1) ~left:6 ~right:7 ~p:0.5));
  checkb "disconnected mixed" false
    (C.is_bipartite_exact (G.disjoint_union (Dgraph.Gen.cycle 4) (Dgraph.Gen.cycle 5)))

let test_bipartite_via_sketches () =
  List.iter
    (fun (name, g) ->
      let sketch, _ = C.is_bipartite_via_sketches g coins in
      checkb name (C.is_bipartite_exact g) sketch)
    [
      ("even cycle", Dgraph.Gen.cycle 10);
      ("odd cycle", Dgraph.Gen.cycle 11);
      ("K5", Dgraph.Gen.complete 5);
      ("path", Dgraph.Gen.path 9);
      ("two odd cycles", G.disjoint_union (Dgraph.Gen.cycle 5) (Dgraph.Gen.cycle 7));
      ("odd+even", G.disjoint_union (Dgraph.Gen.cycle 5) (Dgraph.Gen.cycle 6));
      ("bipartite blocks",
       G.disjoint_union (Dgraph.Gen.complete_bipartite 3 4) (Dgraph.Gen.path 5));
    ]

let test_bipartite_random_agreement () =
  let rng = Stdx.Prng.create 9 in
  let agreements = ref 0 in
  for seed = 1 to 12 do
    let g = Dgraph.Gen.gnp rng 20 0.12 in
    let sketch, _ = C.is_bipartite_via_sketches g (PC.create (seed * 13)) in
    if sketch = C.is_bipartite_exact g then incr agreements
  done;
  checkb (Printf.sprintf "agreement %d/12" !agreements) true (!agreements >= 11)

let () =
  Alcotest.run "connectivity"
    [
      ( "k-forests",
        [
          Alcotest.test_case "certificates valid" `Quick test_k_forests_valid;
          Alcotest.test_case "first forest spans" `Quick test_first_forest_spanning;
          Alcotest.test_case "edge connectivity estimates" `Quick
            test_edge_connectivity_estimates;
          Alcotest.test_case "random graphs" `Slow test_estimates_on_random_graphs;
          Alcotest.test_case "cost scales with k" `Quick test_cost_scales_with_k;
        ] );
      ( "bipartiteness",
        [
          Alcotest.test_case "exact oracle" `Quick test_bipartite_exact;
          Alcotest.test_case "via sketches" `Quick test_bipartite_via_sketches;
          Alcotest.test_case "random agreement" `Slow test_bipartite_random_agreement;
        ] );
    ]

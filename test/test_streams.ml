(* Tests for Streams: dynamic streams, the linear-sketch stream processor,
   and the insertion-only greedy baselines. *)

module S = Streams.Stream
module SS = Streams.Sketch_stream
module IG = Streams.Insertion_greedy
module G = Dgraph.Graph
module PC = Sketchmodel.Public_coins

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_of_graph () =
  let g = Dgraph.Gen.cycle 5 in
  let s = S.of_graph g in
  checki "one event per edge" (G.m g) (S.length s);
  checkb "insertion only" true (S.is_insertion_only s);
  checkb "replay" true (G.equal g (S.final_graph s))

let test_shuffled_same_final () =
  let rng = Stdx.Prng.create 1 in
  let g = Dgraph.Gen.gnp rng 20 0.3 in
  let s = S.shuffled rng g in
  checkb "same final graph" true (G.equal g (S.final_graph s))

let test_with_decoys () =
  let rng = Stdx.Prng.create 2 in
  let g = Dgraph.Gen.gnp rng 20 0.2 in
  let s = S.with_decoys rng g ~decoys:15 in
  checkb "has deletions" false (S.is_insertion_only s);
  checki "events = edges + 2 decoys" (G.m g + 30) (S.length s);
  checkb "decoys cancel" true (G.equal g (S.final_graph s))

let test_final_graph_guards () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "double insert" true
    (raises (fun () -> S.final_graph { S.n = 3; events = [ S.Insert (0, 1); S.Insert (1, 0) ] }));
  checkb "delete absent" true
    (raises (fun () -> S.final_graph { S.n = 3; events = [ S.Delete (0, 1) ] }))

let test_sketch_stream_forest () =
  let rng = Stdx.Prng.create 3 in
  for seed = 1 to 5 do
    let g = Dgraph.Gen.gnp rng 24 0.15 in
    let stream = S.with_decoys rng g ~decoys:(G.m g) in
    let proc = SS.create ~n:24 (PC.create (seed * 7)) in
    SS.feed_all proc stream;
    checkb "forest of final graph" true
      (Dgraph.Components.is_spanning_forest g (SS.spanning_forest proc))
  done

let test_sketch_stream_bitwise_equality () =
  let rng = Stdx.Prng.create 4 in
  let g = Dgraph.Gen.gnp rng 16 0.3 in
  let coins = PC.create 9 in
  (* Random interleaving with decoys must leave exactly the same sketch
     state as a clean insertion pass — linearity, bit for bit. *)
  let proc = SS.create ~n:16 coins in
  SS.feed_all proc (S.with_decoys rng g ~decoys:20);
  checkb "bitwise equal to one-round messages" true (SS.messages_equal_distributed proc g);
  (* And NOT equal to a different graph's messages. *)
  let other = Dgraph.Gen.gnp rng 16 0.3 in
  if not (G.equal g other) then
    checkb "differs for a different graph" false (SS.messages_equal_distributed proc other)

let test_sketch_stream_space_constant () =
  (* Space is independent of the stream length (that is the point of
     linear sketching). *)
  let rng = Stdx.Prng.create 5 in
  let g = Dgraph.Gen.gnp rng 20 0.2 in
  let coins = PC.create 11 in
  let short = SS.create ~n:20 coins in
  SS.feed_all short (S.of_graph g);
  let long = SS.create ~n:20 coins in
  SS.feed_all long (S.with_decoys rng g ~decoys:60);
  checki "identical space" (SS.space_bits short) (SS.space_bits long)

let test_sketch_stream_guards () =
  let proc = SS.create ~n:10 (PC.create 1) in
  Alcotest.check_raises "size mismatch" (Invalid_argument "Sketch_stream.feed_all: size mismatch")
    (fun () -> SS.feed_all proc { S.n = 5; events = [] });
  Alcotest.check_raises "vertex range" (Invalid_argument "Sketch_stream: vertex out of range")
    (fun () -> SS.feed proc (S.Insert (0, 99)))

let test_insertion_mm () =
  let rng = Stdx.Prng.create 6 in
  for seed = 1 to 10 do
    let g = Dgraph.Gen.gnp (Stdx.Prng.create seed) 30 0.2 in
    let m = IG.mm_of_stream (S.shuffled rng g) in
    checkb "maximal matching" true (Dgraph.Matching.is_maximal g m)
  done

let test_insertion_mm_rejects_deletions () =
  Alcotest.check_raises "deletions unsupported"
    (Invalid_argument "Insertion_greedy.mm_of_stream: deletions are not supported") (fun () ->
      ignore
        (IG.mm_of_stream { S.n = 3; events = [ S.Insert (0, 1); S.Delete (0, 1) ] }))

let test_insertion_mm_state_bits () =
  let st = IG.mm_create 100 in
  let empty_bits = IG.mm_state_bits st in
  IG.mm_feed st (0, 1);
  checkb "state grows with matches" true (IG.mm_state_bits st > empty_bits);
  IG.mm_feed st (0, 2);
  checki "blocked edge adds nothing" 1 (List.length (IG.mm_result st))

let test_insertion_mis () =
  let rng = Stdx.Prng.create 7 in
  for seed = 1 to 10 do
    let g = Dgraph.Gen.gnp (Stdx.Prng.create (seed * 3)) 30 0.25 in
    let order = Stdx.Prng.permutation rng 30 in
    let s = IG.mis_of_graph g ~order in
    checkb "maximal IS" true (Dgraph.Mis.is_maximal g s)
  done

let test_insertion_mis_guards () =
  let st = IG.mis_create 4 in
  IG.mis_feed st ~vertex:0 ~earlier_neighbors:[];
  Alcotest.check_raises "double arrival"
    (Invalid_argument "Insertion_greedy.mis_feed: vertex arrived twice") (fun () ->
      IG.mis_feed st ~vertex:0 ~earlier_neighbors:[]);
  Alcotest.check_raises "phantom neighbor"
    (Invalid_argument "Insertion_greedy.mis_feed: neighbor has not arrived") (fun () ->
      IG.mis_feed st ~vertex:1 ~earlier_neighbors:[ 3 ])

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"decoy streams replay to the original graph" ~count:60
         QCheck.(triple (int_range 2 25) (int_range 0 10000) (int_range 0 30))
         (fun (n, seed, decoys) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           G.equal g (S.final_graph (S.with_decoys rng g ~decoys))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"insertion-greedy MM maximal for any order" ~count:60
         QCheck.(pair (int_range 1 25) (int_range 0 10000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           Dgraph.Matching.is_maximal g (IG.mm_of_stream (S.shuffled rng g))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"vertex-arrival MIS maximal for any order" ~count:60
         QCheck.(pair (int_range 1 25) (int_range 0 10000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           Dgraph.Mis.is_maximal g (IG.mis_of_graph g ~order:(Stdx.Prng.permutation rng n))));
    (* The multi-pass contract: however a stream is cut into arrival
       batches, and (for insertion-only streams) in whatever order those
       batches are replayed, the frozen graph is the same one. This is
       what lets [Multipass.Stream_matching] treat "a pass" as any
       chunking of the event sequence. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"any chunking reassembles to the same frozen graph" ~count:60
         QCheck.(triple (int_range 2 25) (int_range 0 10000) (int_range 1 12))
         (fun (n, seed, k) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           let s = S.shuffled rng g in
           let pieces = S.chunks s k in
           List.length pieces = k
           && S.length (S.concat pieces) = S.length s
           && G.equal g (S.final_graph (S.concat pieces))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"any pass order of insertion-only chunks freezes identically"
         ~count:60
         QCheck.(triple (int_range 2 25) (int_range 0 10000) (int_range 1 12))
         (fun (n, seed, k) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           let pieces = Array.of_list (S.chunks (S.shuffled rng g) k) in
           Stdx.Prng.shuffle rng pieces;
           G.equal g (S.final_graph (S.concat (Array.to_list pieces)))));
  ]

let () =
  Alcotest.run "streams"
    [
      ( "stream",
        [
          Alcotest.test_case "of_graph" `Quick test_of_graph;
          Alcotest.test_case "shuffled" `Quick test_shuffled_same_final;
          Alcotest.test_case "with decoys" `Quick test_with_decoys;
          Alcotest.test_case "final graph guards" `Quick test_final_graph_guards;
        ] );
      ( "sketch-stream",
        [
          Alcotest.test_case "forest under deletions" `Quick test_sketch_stream_forest;
          Alcotest.test_case "bitwise equality" `Quick test_sketch_stream_bitwise_equality;
          Alcotest.test_case "space independent of length" `Quick
            test_sketch_stream_space_constant;
          Alcotest.test_case "guards" `Quick test_sketch_stream_guards;
        ] );
      ( "insertion-greedy",
        [
          Alcotest.test_case "mm" `Quick test_insertion_mm;
          Alcotest.test_case "mm rejects deletions" `Quick test_insertion_mm_rejects_deletions;
          Alcotest.test_case "mm state bits" `Quick test_insertion_mm_state_bits;
          Alcotest.test_case "mis" `Quick test_insertion_mis;
          Alcotest.test_case "mis guards" `Quick test_insertion_mis_guards;
        ] );
      ("streams-properties", qcheck_tests);
    ]

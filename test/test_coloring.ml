(* Tests for Coloring.Palette: the (Delta+1)-coloring sketch. *)

module P = Coloring.Palette
module G = Dgraph.Graph
module PC = Sketchmodel.Public_coins

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let proper_outcome g coins =
  let outcome, stats = P.run g coins in
  match outcome.P.coloring with
  | Some colors -> (colors, stats, outcome.P.conflict_edges)
  | None -> Alcotest.fail "coloring failed"

let test_shapes () =
  let coins = PC.create 44 in
  List.iter
    (fun g ->
      let colors, _, _ = proper_outcome g coins in
      checkb "proper" true (P.is_proper g colors);
      checkb "within palette" true (P.max_color colors <= G.max_degree g))
    [
      Dgraph.Gen.complete 12;
      Dgraph.Gen.cycle 9;
      Dgraph.Gen.star 15;
      Dgraph.Gen.path 10;
      Dgraph.Gen.complete_bipartite 6 6;
    ]

let test_random_many_seeds () =
  let failures = ref 0 in
  for seed = 1 to 20 do
    let rng = Stdx.Prng.create seed in
    let g = Dgraph.Gen.gnp rng 60 0.3 in
    let outcome, _ = P.run g (PC.create (seed * 5)) in
    match outcome.P.coloring with
    | Some colors -> if not (P.is_proper g colors) then incr failures
    | None -> incr failures
  done;
  checki "no failures over 20 seeds" 0 !failures

let test_empty_graph () =
  let g = G.empty 5 in
  let colors, stats, conflicts = proper_outcome g (PC.create 1) in
  checkb "proper trivially" true (P.is_proper g colors);
  checki "no conflicts" 0 conflicts;
  checki "tiny messages" 0 (stats.Sketchmodel.Model.max_bits - stats.Sketchmodel.Model.max_bits);
  checkb "cost counted" true (stats.Sketchmodel.Model.max_bits >= 8)

let test_complete_graph_needs_all_colors () =
  (* K_n requires exactly Delta+1 = n colors; with full-size lists the
     sketch must still find a proper coloring. *)
  let g = Dgraph.Gen.complete 8 in
  let outcome, _ = P.run g ~list_size:8 (PC.create 2) in
  match outcome.P.coloring with
  | Some colors ->
      checkb "proper" true (P.is_proper g colors);
      let distinct = List.sort_uniq compare (Array.to_list colors) in
      checki "all 8 colors used" 8 (List.length distinct)
  | None -> Alcotest.fail "K8 coloring failed"

let test_conflict_edges_counted_once () =
  (* In a complete graph with full lists every edge conflicts. *)
  let g = Dgraph.Gen.complete 6 in
  let outcome, _ = P.run g ~list_size:6 (PC.create 3) in
  checki "conflicts = edges" (G.m g) outcome.P.conflict_edges

let test_is_proper_rejects () =
  let g = Dgraph.Gen.path 3 in
  checkb "monochrome edge" false (P.is_proper g [| 0; 0; 1 |]);
  checkb "wrong length" false (P.is_proper g [| 0; 1 |]);
  checkb "unset color" false (P.is_proper g [| 0; -1; 0 |]);
  checkb "valid" true (P.is_proper g [| 0; 1; 0 |])

let test_determinism () =
  let rng = Stdx.Prng.create 4 in
  let g = Dgraph.Gen.gnp rng 40 0.3 in
  let o1, s1 = P.run g (PC.create 9) in
  let o2, s2 = P.run g (PC.create 9) in
  checkb "same coloring" true (o1.P.coloring = o2.P.coloring);
  checki "same cost" s1.Sketchmodel.Model.max_bits s2.Sketchmodel.Model.max_bits

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"palette coloring proper on random graphs" ~count:40
         QCheck.(pair (int_range 2 40) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.4 in
           let outcome, _ = P.run g (PC.create (seed + 1)) in
           match outcome.P.coloring with
           | Some colors -> P.is_proper g colors && P.max_color colors <= G.max_degree g
           | None -> false));
  ]

let () =
  Alcotest.run "coloring"
    [
      ( "palette",
        [
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "random many seeds" `Quick test_random_many_seeds;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "complete graph" `Quick test_complete_graph_needs_all_colors;
          Alcotest.test_case "conflict edges counted once" `Quick test_conflict_edges_counted_once;
          Alcotest.test_case "is_proper rejects" `Quick test_is_proper_rejects;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ("coloring-properties", qcheck_tests);
    ]

(* Tests for Agm: edge encoding, spanning-forest sketches, and the
   Footnote-1 bridge protocol. *)

module EE = Agm.Edge_encoding
module SF = Agm.Spanning_forest
module BD = Agm.Bridge_demo
module G = Dgraph.Graph
module PC = Sketchmodel.Public_coins

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_edge_encoding_roundtrip () =
  let n = 50 in
  for u = 0 to 9 do
    for v = 10 to 19 do
      let idx = EE.index ~n u v in
      Alcotest.(check (pair int int)) "roundtrip" (u, v) (EE.endpoints ~n idx)
    done
  done;
  checki "normalised" (EE.index ~n 7 3) (EE.index ~n 3 7)

let test_vertex_updates_signs () =
  let updates = EE.vertex_updates ~n:10 4 [| 2; 7 |] in
  Alcotest.(check (list (pair int int)))
    "signs: -1 when larger endpoint, +1 when smaller"
    [ (EE.index ~n:10 2 4, -1); (EE.index ~n:10 4 7, 1) ]
    updates

let test_updates_cancel_inside_component () =
  (* The defining identity: summing all vertices' updates over an edge set
     leaves the zero vector. *)
  let rng = Stdx.Prng.create 21 in
  let g = Dgraph.Gen.gnp rng 20 0.3 in
  let totals = Hashtbl.create 64 in
  for v = 0 to 19 do
    List.iter
      (fun (idx, w) ->
        Hashtbl.replace totals idx (w + Option.value ~default:0 (Hashtbl.find_opt totals idx)))
      (EE.vertex_updates ~n:20 v (G.neighbors g v))
  done;
  Hashtbl.iter (fun _ w -> checki "cancels" 0 w) totals

let test_forest_shapes () =
  let coins = PC.create 77 in
  List.iter
    (fun g ->
      let forest, _ = SF.run g coins in
      checkb "valid spanning forest" true (Dgraph.Components.is_spanning_forest g forest))
    [
      Dgraph.Gen.path 16;
      Dgraph.Gen.cycle 17;
      Dgraph.Gen.complete 12;
      G.empty 8;
      G.disjoint_union (Dgraph.Gen.cycle 6) (Dgraph.Gen.path 7);
    ]

let test_forest_structured_workloads () =
  let coins = PC.create 123 in
  let rng = Stdx.Prng.create 31 in
  let degrees = Dgraph.Gen.power_law_degrees rng ~n:60 ~exponent:2.5 ~dmax:10 in
  List.iter
    (fun (name, g) ->
      let forest, _ = SF.run g coins in
      checkb name true (Dgraph.Components.is_spanning_forest g forest))
    [
      ("grid 6x7", Dgraph.Gen.grid 6 7);
      ("power-law", Dgraph.Gen.configuration_model rng ~degrees);
      ("two grids", G.disjoint_union (Dgraph.Gen.grid 4 4) (Dgraph.Gen.grid 3 5));
    ]

let test_forest_random_many_seeds () =
  let failures = ref 0 in
  for seed = 1 to 15 do
    let rng = Stdx.Prng.create seed in
    let g = Dgraph.Gen.gnp rng 48 0.1 in
    let forest, _ = SF.run g (PC.create (seed * 13)) in
    if not (Dgraph.Components.is_spanning_forest g forest) then incr failures
  done;
  checki "no failures over 15 seeds" 0 !failures

let test_forest_cost_accounted () =
  let g = Dgraph.Gen.path 32 in
  let _, stats = SF.run g (PC.create 5) in
  checkb "nonzero cost" true (stats.Sketchmodel.Model.max_bits > 0);
  (* All vertices write the same sampler structure: max is close to avg. *)
  checkb "uniform sizes" true
    (float_of_int stats.Sketchmodel.Model.max_bits < 1.5 *. stats.Sketchmodel.Model.avg_bits)

let test_connected_components () =
  let coins = PC.create 6 in
  let g = G.disjoint_union (Dgraph.Gen.complete 5) (Dgraph.Gen.cycle 7) in
  let decoded, _ = SF.connected_components g coins in
  checki "two components" 2 decoded;
  let single, _ = SF.connected_components (Dgraph.Gen.path 9) coins in
  checki "one component" 1 single

let test_rounds_grow_with_n () =
  checkb "rounds increasing" true (SF.rounds 1024 > SF.rounds 16);
  checki "rounds small" 2 (SF.rounds 2)

let test_bridge_finds_planted () =
  let hits = ref 0 in
  for seed = 1 to 10 do
    let rng = Stdx.Prng.create (seed * 3) in
    let g, planted = Dgraph.Gen.bridge_of_clouds rng ~half:40 ~p:0.5 in
    let result = BD.run g ~samples_per_vertex:3 (PC.create (seed * 17)) in
    if result.BD.bridge = Some planted then incr hits
  done;
  checkb (Printf.sprintf "bridge found >= 9/10 (%d)" !hits) true (!hits >= 9)

let test_bridge_success_probability () =
  let p = BD.success_probability ~half:32 ~samples_per_vertex:3 ~trials:10 ~seed:2 in
  checkb "high success" true (p >= 0.9)

let test_bridge_cost_logarithmic () =
  (* Cost grows slowly: quadrupling n should much less than quadruple the
     sketch size. *)
  let cost half =
    let rng = Stdx.Prng.create 4 in
    let g, _ = Dgraph.Gen.bridge_of_clouds rng ~half ~p:0.5 in
    (BD.run g ~samples_per_vertex:3 (PC.create 8)).BD.stats.Sketchmodel.Model.max_bits
  in
  let c64 = cost 64 and c256 = cost 256 in
  checkb "sublinear growth" true (c256 < 2 * c64)

let () =
  Alcotest.run "agm"
    [
      ( "edge-encoding",
        [
          Alcotest.test_case "roundtrip" `Quick test_edge_encoding_roundtrip;
          Alcotest.test_case "update signs" `Quick test_vertex_updates_signs;
          Alcotest.test_case "cancellation identity" `Quick test_updates_cancel_inside_component;
        ] );
      ( "spanning-forest",
        [
          Alcotest.test_case "shapes" `Quick test_forest_shapes;
          Alcotest.test_case "structured workloads" `Quick test_forest_structured_workloads;
          Alcotest.test_case "random graphs many seeds" `Slow test_forest_random_many_seeds;
          Alcotest.test_case "cost accounted" `Quick test_forest_cost_accounted;
          Alcotest.test_case "connected components" `Quick test_connected_components;
          Alcotest.test_case "rounds grow" `Quick test_rounds_grow_with_n;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "finds planted bridge" `Slow test_bridge_finds_planted;
          Alcotest.test_case "success probability" `Slow test_bridge_success_probability;
          Alcotest.test_case "cost sublinear" `Quick test_bridge_cost_logarithmic;
        ] );
    ]

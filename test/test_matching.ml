(* Tests for Dgraph.Matching, with a brute-force maximum matching as the
   oracle for Hopcroft–Karp. *)

module G = Dgraph.Graph
module M = Dgraph.Matching

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Brute-force maximum matching size by recursion over the edge list. *)
let brute_max_matching g =
  let edges = G.edges_array g in
  let used = Stdx.Bitset.create (G.n g) in
  let rec go i =
    if i >= Array.length edges then 0
    else begin
      let u, v = edges.(i) in
      let skip = go (i + 1) in
      if Stdx.Bitset.mem used u || Stdx.Bitset.mem used v then skip
      else begin
        Stdx.Bitset.add used u;
        Stdx.Bitset.add used v;
        let take = 1 + go (i + 1) in
        Stdx.Bitset.remove used u;
        Stdx.Bitset.remove used v;
        max skip take
      end
    end
  in
  go 0

let test_greedy_path () =
  let g = Dgraph.Gen.path 5 in
  let m = M.greedy g () in
  checkb "maximal" true (M.is_maximal g m);
  checki "path P5 greedy lexicographic" 2 (M.size m)

let test_greedy_maximal_various () =
  let rng = Stdx.Prng.create 5 in
  List.iter
    (fun g ->
      let m = M.greedy g () in
      checkb "matching" true (M.is_matching g m);
      checkb "maximal" true (M.is_maximal g m))
    [
      Dgraph.Gen.complete 7;
      Dgraph.Gen.cycle 9;
      Dgraph.Gen.star 8;
      Dgraph.Gen.gnp rng 30 0.2;
      Dgraph.Gen.gnp rng 30 0.02;
      G.empty 5;
    ]

let test_verify_fields () =
  let g = G.create 5 [ (0, 1); (1, 2); (2, 3) ] in
  let v_ok = M.verify g [ (0, 1); (2, 3) ] in
  checkb "ok edges" true v_ok.M.edges_exist;
  checkb "ok disjoint" true v_ok.M.disjoint;
  checkb "ok maximal" true v_ok.M.maximal;
  let v_bad_edge = M.verify g [ (0, 4) ] in
  checkb "nonexistent edge" false v_bad_edge.M.edges_exist;
  let v_overlap = M.verify g [ (0, 1); (1, 2) ] in
  checkb "overlap detected" false v_overlap.M.disjoint;
  let v_not_max = M.verify g [ (0, 1) ] in
  checkb "not maximal" false v_not_max.M.maximal;
  checkb "but valid" true (v_not_max.M.edges_exist && v_not_max.M.disjoint)

let test_empty_matching_of_empty_graph () =
  let g = G.empty 4 in
  checkb "empty matching maximal in empty graph" true (M.is_maximal g [])

let test_greedy_on_reported () =
  let g = G.empty 6 in
  let reported = [ (0, 1); (1, 2); (3, 4); (4, 5); (0, 1) ] in
  let m = M.greedy_on_reported g reported in
  Alcotest.(check (list (pair int int))) "greedy picks disjoint prefix" [ (0, 1); (3, 4) ] m

let test_augment_to_maximal () =
  let g = Dgraph.Gen.path 6 in
  (* Partial matching with an invalid edge: it must be dropped, then the
     result extended to maximality. *)
  let m = M.augment_to_maximal g [ (1, 2); (0, 5) ] in
  checkb "maximal" true (M.is_maximal g m);
  checkb "contains kept seed" true (List.mem (1, 2) m)

let test_hopcroft_karp_basic () =
  let g = Dgraph.Gen.complete_bipartite 3 3 in
  let left = Stdx.Bitset.of_list 6 [ 0; 1; 2 ] in
  let m = M.maximum_bipartite g ~left in
  checki "perfect" 3 (M.size m);
  checkb "valid" true (M.is_matching g m)

let test_hopcroft_karp_star () =
  let g = Dgraph.Gen.star 6 in
  let left = Stdx.Bitset.of_list 6 [ 0 ] in
  checki "star max matching" 1 (M.size (M.maximum_bipartite g ~left))

let test_hopcroft_karp_rejects_non_bipartite () =
  let g = G.create 4 [ (0, 1); (1, 2) ] in
  let left = Stdx.Bitset.of_list 4 [ 0; 1 ] in
  Alcotest.check_raises "edge inside side"
    (Invalid_argument "Matching.maximum_bipartite: edge inside one side") (fun () ->
      ignore (M.maximum_bipartite g ~left))

let bipartite_gen =
  QCheck.make
    ~print:(fun (l, r, edges) -> Printf.sprintf "l=%d r=%d e=%d" l r (List.length edges))
    QCheck.Gen.(
      int_range 1 6 >>= fun l ->
      int_range 1 6 >>= fun r ->
      list_size (int_range 0 14) (pair (int_range 0 (l - 1)) (int_range 0 (r - 1)))
      >>= fun pairs -> return (l, r, List.map (fun (a, b) -> (a, l + b)) pairs))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hopcroft-karp matches brute force" ~count:300 bipartite_gen
         (fun (l, r, edges) ->
           let g = G.create (l + r) edges in
           let left = Stdx.Bitset.of_list (l + r) (List.init l (fun i -> i)) in
           let hk = M.maximum_bipartite g ~left in
           M.is_matching g hk && M.size hk = brute_max_matching g));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"greedy always maximal" ~count:300
         QCheck.(pair (int_range 1 25) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.25 in
           M.is_maximal g (M.greedy g ())));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"maximal matching at least half of maximum" ~count:100
         QCheck.(pair (int_range 2 10) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.4 in
           2 * M.size (M.greedy g ()) >= brute_max_matching g));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"greedy under random order still maximal" ~count:200
         QCheck.(pair (int_range 1 20) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.3 in
           let order = G.edges_array g in
           Stdx.Prng.shuffle rng order;
           M.is_maximal g (M.greedy g ~order ())));
  ]

let () =
  Alcotest.run "matching"
    [
      ( "matching",
        [
          Alcotest.test_case "greedy path" `Quick test_greedy_path;
          Alcotest.test_case "greedy maximal various" `Quick test_greedy_maximal_various;
          Alcotest.test_case "verify fields" `Quick test_verify_fields;
          Alcotest.test_case "empty graph" `Quick test_empty_matching_of_empty_graph;
          Alcotest.test_case "greedy on reported" `Quick test_greedy_on_reported;
          Alcotest.test_case "augment to maximal" `Quick test_augment_to_maximal;
          Alcotest.test_case "hopcroft-karp basic" `Quick test_hopcroft_karp_basic;
          Alcotest.test_case "hopcroft-karp star" `Quick test_hopcroft_karp_star;
          Alcotest.test_case "hopcroft-karp bipartite guard" `Quick
            test_hopcroft_karp_rejects_non_bipartite;
        ] );
      ("matching-properties", qcheck_tests);
    ]

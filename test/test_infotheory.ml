(* Tests for Infotheory: spaces, entropy and the executable Fact 2.2 /
   Propositions 2.3-2.4 used by the lower-bound accounting. *)

module S = Infotheory.Space
module E = Infotheory.Entropy
module F = Infotheory.Facts

let checkb = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg
let checkf6 msg = Alcotest.(check (float 1e-6)) msg

(* A generic random space: outcomes 0..size-1 with random weights, plus two
   random variable tables mapping outcomes to small codomains. *)
let random_space_gen =
  QCheck.make
    ~print:(fun (ws, _, _, _) -> Printf.sprintf "outcomes=%d" (List.length ws))
    QCheck.Gen.(
      int_range 2 24 >>= fun size ->
      list_repeat size (int_range 1 20) >>= fun ws ->
      list_repeat size (int_range 0 3) >>= fun xs ->
      list_repeat size (int_range 0 3) >>= fun ys ->
      list_repeat size (int_range 0 2) >>= fun zs -> return (ws, xs, ys, zs))

let space_of (ws, _, _, _) =
  S.of_weighted (List.mapi (fun i w -> (i, float_of_int w)) ws)

let rv_of values i = List.nth values i

let test_uniform_entropy () =
  let space = S.uniform [ 0; 1; 2; 3 ] in
  checkf "H uniform 4" 2. (E.entropy space (fun x -> x));
  checkf "H constant" 0. (E.entropy space (fun _ -> 0))

let test_weighted () =
  let space = S.of_weighted [ (0, 1.); (1, 1.); (1, 2.) ] in
  (* merged: P(0)=1/4, P(1)=3/4 *)
  checkf "prob" 0.25 (S.prob space (fun x -> x = 0));
  checkf "expectation" 0.75 (S.expectation space float_of_int)

let test_weighted_invalid () =
  Alcotest.check_raises "no mass" (Invalid_argument "Space: total weight must be positive")
    (fun () -> ignore (S.of_weighted [ (0, 0.) ]));
  Alcotest.check_raises "negative" (Invalid_argument "Space: negative weight") (fun () ->
      ignore (S.of_weighted [ (0, -1.) ]))

let test_bits_space () =
  let space = S.bits 3 in
  Alcotest.(check int) "8 outcomes" 8 (S.support_size space);
  checkf "3 bits of entropy" 3. (E.entropy space (fun b -> Array.to_list b));
  checkf "single coordinate is one bit" 1. (E.entropy space (fun b -> b.(1)))

let test_product () =
  let space = S.product (S.uniform [ 0; 1 ]) (S.uniform [ 0; 1; 2; 3 ]) in
  checkf "joint entropy adds" 3. (E.entropy space (fun p -> p));
  checkf "independent => MI zero" 0. (E.mutual_information space fst snd)

let test_condition () =
  let space = S.bits 2 in
  let conditioned = S.condition (fun b -> b.(0)) space in
  checkf "conditioning halves support" 1. (E.entropy conditioned (fun b -> Array.to_list b));
  Alcotest.check_raises "zero-probability event"
    (Invalid_argument "Space.condition: event has probability zero") (fun () ->
      ignore (S.condition (fun _ -> false) space))

let test_mi_identical () =
  let space = S.uniform [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let x o = o in
  checkf "I(X;X) = H(X)" 3. (E.mutual_information space x x)

let test_xor_structure () =
  (* X, Y fair independent bits; Z = X xor Y. Pairwise independent, yet
     I(X,Y;Z) = 1. The classic CMI example: I(X;Z|Y) = 1 > I(X;Z) = 0. *)
  let space = S.bits 2 in
  let x b = b.(0) and y b = b.(1) in
  let z b = b.(0) <> b.(1) in
  checkf "I(X;Z)=0" 0. (E.mutual_information space x z);
  checkf "I(X;Z|Y)=1" 1. (E.conditional_mutual_information space x z ~given:y);
  checkf "H(Z|X,Y)=0" 0. (E.conditional_entropy space z ~given:(E.pair x y))

let test_kl () =
  let p = S.of_weighted [ (0, 3.); (1, 1.) ] in
  let q = S.uniform [ 0; 1 ] in
  let expected = (0.75 *. (log (1.5) /. log 2.)) +. (0.25 *. (log 0.5 /. log 2.)) in
  checkf "KL value" expected (E.kl_divergence p q);
  checkf "KL self" 0. (E.kl_divergence p p);
  checkb "KL infinite outside support" true
    (E.kl_divergence q (S.uniform [ 0 ]) = infinity)

let test_of_samples () =
  let space = S.of_samples [| 1; 1; 2; 2 |] in
  checkf "empirical H" 1. (E.entropy space (fun x -> x))

let test_facts_bounds () =
  let space = S.of_weighted [ (0, 1.); (1, 2.); (2, 1.) ] in
  let h, cap = F.entropy_bounds space (fun x -> x) in
  checkb "0 <= H <= log support" true (h >= 0. && h <= cap +. 1e-12);
  checkf6 "cap = log2 3" (log 3. /. log 2.) cap

let facts_qcheck =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Fact 2.2-(1): entropy within bounds" ~count:300 random_space_gen
         (fun ((_, xs, _, _) as input) ->
           let space = space_of input in
           let h, cap = F.entropy_bounds space (rv_of xs) in
           h >= -1e-9 && h <= cap +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Fact 2.2-(2): MI nonnegative" ~count:300 random_space_gen
         (fun ((_, xs, ys, _) as input) ->
           let space = space_of input in
           F.mi_nonneg space (rv_of xs) (rv_of ys) >= -1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Fact 2.2-(3): conditioning reduces entropy" ~count:300
         random_space_gen
         (fun ((_, xs, ys, zs) as input) ->
           let space = space_of input in
           F.conditioning_reduces_entropy space (rv_of xs) ~given:(rv_of ys) ~extra:(rv_of zs)
           >= -1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Fact 2.2-(4): entropy chain rule" ~count:300 random_space_gen
         (fun ((_, xs, ys, zs) as input) ->
           let space = space_of input in
           F.chain_rule_entropy_residual space (rv_of xs) (rv_of ys) ~given:(rv_of zs) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Fact 2.2-(5): MI chain rule" ~count:300 random_space_gen
         (fun ((_, xs, ys, zs) as input) ->
           let space = space_of input in
           F.chain_rule_mi_residual space (rv_of xs) (rv_of ys) (rv_of zs) ~given:(fun _ -> 0)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Proposition 2.3 when premise holds" ~count:500 random_space_gen
         (fun ((_, xs, ys, zs) as input) ->
           let space = space_of input in
           match
             F.proposition_2_3 space ~a:(rv_of xs) ~b:(rv_of ys) ~c:(fun _ -> 0) ~d:(rv_of zs)
           with
           | None -> true (* premise did not hold; nothing to check *)
           | Some slack -> slack >= -1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Proposition 2.4 when premise holds" ~count:500 random_space_gen
         (fun ((_, xs, ys, zs) as input) ->
           let space = space_of input in
           match
             F.proposition_2_4 space ~a:(rv_of xs) ~b:(rv_of ys) ~c:(fun _ -> 0) ~d:(rv_of zs)
           with
           | None -> true
           | Some slack -> slack >= -1e-9));
  ]

let dpi_qcheck =
  (* Data-processing: post-processing Y cannot raise information about X:
     I(X ; g(Y)) <= I(X ; Y). *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"data-processing inequality" ~count:300 random_space_gen
       (fun ((_, xs, ys, _) as input) ->
         let space = space_of input in
         let x = rv_of xs and y = rv_of ys in
         let g v = v mod 2 in
         E.mutual_information space x (fun o -> g (y o))
         <= E.mutual_information space x y +. 1e-9))

let test_prop_2_3_concrete () =
  (* A = first bit, D = second bit (independent of A), C constant,
     B = xor: conditioning on D raises I(A;B). *)
  let space = S.bits 2 in
  let a b = b.(0) and d b = b.(1) in
  let bvar b = b.(0) <> b.(1) in
  match F.proposition_2_3 space ~a ~b:bvar ~c:(fun _ -> 0) ~d with
  | None -> Alcotest.fail "premise should hold"
  | Some slack -> checkf "xor slack = 1" 1. slack

let () =
  Alcotest.run "infotheory"
    [
      ( "space",
        [
          Alcotest.test_case "uniform entropy" `Quick test_uniform_entropy;
          Alcotest.test_case "weighted" `Quick test_weighted;
          Alcotest.test_case "weighted invalid" `Quick test_weighted_invalid;
          Alcotest.test_case "bits" `Quick test_bits_space;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "condition" `Quick test_condition;
          Alcotest.test_case "of_samples" `Quick test_of_samples;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "MI identical" `Quick test_mi_identical;
          Alcotest.test_case "xor structure" `Quick test_xor_structure;
          Alcotest.test_case "KL" `Quick test_kl;
          Alcotest.test_case "facts bounds" `Quick test_facts_bounds;
          Alcotest.test_case "prop 2.3 concrete" `Quick test_prop_2_3_concrete;
        ] );
      ("facts-properties", dpi_qcheck :: facts_qcheck);
    ]

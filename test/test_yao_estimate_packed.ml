(* Tests for Core.Yao (derandomization), Infotheory.Estimate (sampled MI)
   and Rsgraph.Packed (randomized RS family). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Yao --- *)

let test_yao_max_dominates_average () =
  (* Deterministic toy: success depends on seed parity matching instance
     parity. *)
  let report =
    Core.Yao.derandomize ~seeds:[ 0; 1; 2; 3 ]
      ~instances:(Array.init 10 (fun i -> i))
      ~run:(fun coins i -> (Sketchmodel.Public_coins.seed coins + i) mod 2 = 0)
  in
  checkb "dominates" true (Core.Yao.dominates report);
  Alcotest.(check (float 1e-9)) "average is half" 0.5 report.Core.Yao.average;
  Alcotest.(check (float 1e-9)) "best is half here" 0.5 report.Core.Yao.best_rate

let test_yao_spread () =
  let report =
    Core.Yao.derandomize ~seeds:[ 0; 1 ]
      ~instances:[| 0; 1; 2; 3 |]
      ~run:(fun coins i -> Sketchmodel.Public_coins.seed coins = 0 || i = 0)
  in
  Alcotest.(check (float 1e-9)) "best rate" 1.0 report.Core.Yao.best_rate;
  checki "best seed" 0 report.Core.Yao.best_seed;
  Alcotest.(check (float 1e-9)) "average" 0.625 report.Core.Yao.average

let test_yao_on_dmm () =
  let rs = Rsgraph.Rs_graph.bipartite 5 in
  let instances = Array.init 6 (fun i -> Core.Hard_dist.sample rs (Stdx.Prng.create (i * 11))) in
  let report =
    Core.Yao.derandomize ~seeds:[ 1; 2; 3 ] ~instances ~run:(fun coins dmm ->
        let p =
          Protocols.Sampled_mm.protocol ~budget_bits:24 ~strategy:Protocols.Sampled_mm.Uniform
        in
        let out, _ = Sketchmodel.Model.run p dmm.Core.Hard_dist.graph coins in
        Dgraph.Matching.is_maximal dmm.Core.Hard_dist.graph out)
  in
  checkb "dominates on D_MM" true (Core.Yao.dominates report);
  checki "three seeds reported" 3 (List.length report.Core.Yao.per_seed)

let test_yao_guards () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "no seeds" true
    (raises (fun () -> Core.Yao.derandomize ~seeds:[] ~instances:[| 1 |] ~run:(fun _ _ -> true)));
  checkb "no instances" true
    (raises (fun () -> Core.Yao.derandomize ~seeds:[ 1 ] ~instances:[||] ~run:(fun _ _ -> true)))

(* --- Estimate --- *)

let test_entropy_plugin_exact_on_uniform () =
  let samples = Array.init 1024 (fun i -> i mod 4) in
  Alcotest.(check (float 1e-9)) "uniform 4" 2. (Infotheory.Estimate.entropy_plugin samples);
  Alcotest.(check (float 0.01)) "miller-madow close" 2.
    (Infotheory.Estimate.entropy_miller_madow samples)

let test_entropy_plugin_constant () =
  Alcotest.(check (float 1e-9)) "constant" 0.
    (Infotheory.Estimate.entropy_plugin (Array.make 100 42))

let test_mi_plugin_identical_and_independent () =
  let rng = Stdx.Prng.create 4 in
  let xs = Array.init 4000 (fun _ -> Stdx.Prng.int rng 4) in
  let identical = Array.map (fun x -> (x, x)) xs in
  checkb "identical ~ 2 bits" true
    (abs_float (Infotheory.Estimate.mutual_information_plugin identical -. 2.) < 0.02);
  let independent = Array.map (fun x -> (x, Stdx.Prng.int rng 4)) xs in
  checkb "independent ~ 0 (upward bias < 0.01)" true
    (Infotheory.Estimate.mutual_information_plugin independent < 0.01)

let test_cmi_plugin_xor () =
  (* X, Y fair bits, Z = X xor Y: I(X;Z) ~ 0 but I(X;Z|Y) ~ 1. *)
  let rng = Stdx.Prng.create 5 in
  let samples =
    Array.init 6000 (fun _ ->
        let x = Stdx.Prng.bool rng and y = Stdx.Prng.bool rng in
        (x, (x <> y, y)))
  in
  checkb "I(X;Z|Y) ~ 1" true
    (abs_float (Infotheory.Estimate.conditional_mutual_information_plugin samples -. 1.) < 0.02)

let test_sample_space_frequencies () =
  let space = Infotheory.Space.of_weighted [ (0, 3.); (1, 1.) ] in
  let samples = Infotheory.Estimate.sample_space (Stdx.Prng.create 6) space 8000 in
  let zeros = Array.fold_left (fun acc x -> if x = 0 then acc + 1 else acc) 0 samples in
  checkb "frequency ~ 3/4" true (abs (zeros - 6000) < 300)

let test_estimator_converges_to_exact () =
  (* On an enumerable space, plug-in MI from many samples approaches the
     exact value. *)
  let space = Infotheory.Space.bits 3 in
  let exact =
    Infotheory.Entropy.mutual_information space (fun b -> b.(0)) (fun b -> (b.(0), b.(1)))
  in
  let samples = Infotheory.Estimate.sample_space (Stdx.Prng.create 7) space 8000 in
  let joint = Array.map (fun b -> (b.(0), (b.(0), b.(1)))) samples in
  let est = Infotheory.Estimate.mutual_information_plugin joint in
  checkb "converged" true (abs_float (est -. exact) < 0.02)

(* --- Packed --- *)

let test_packed_is_valid_rs () =
  let rng = Stdx.Prng.create 8 in
  match Rsgraph.Packed.pack rng ~big_n:40 ~r:4 ~tries:500 with
  | None -> Alcotest.fail "packing placed nothing"
  | Some rs ->
      checkb "verified RS graph" true (Rsgraph.Verify.is_valid_rs rs);
      checki "r as requested" 4 rs.Rsgraph.Rs_graph.r;
      checkb "placed several" true (rs.Rsgraph.Rs_graph.t_count >= 2)

let test_packed_guards () =
  let rng = Stdx.Prng.create 9 in
  Alcotest.check_raises "2r > N" (Invalid_argument "Packed.pack: 2r must fit in N") (fun () ->
      ignore (Rsgraph.Packed.pack rng ~big_n:6 ~r:4 ~tries:10))

let test_packed_more_tries_no_worse () =
  let t_small = Rsgraph.Packed.achieved_t (Stdx.Prng.create 10) ~big_n:30 ~r:3 ~tries:50 in
  let t_large = Rsgraph.Packed.achieved_t (Stdx.Prng.create 10) ~big_n:30 ~r:3 ~tries:1000 in
  checkb "monotone in tries (same seed)" true (t_large >= t_small)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"yao best >= average always" ~count:100
         QCheck.(pair (list_of_size Gen.(int_range 1 6) (int_range 0 50)) (int_range 1 20))
         (fun (seeds, insts) ->
           let report =
             Core.Yao.derandomize ~seeds
               ~instances:(Array.init insts (fun i -> i))
               ~run:(fun coins i ->
                 Stdx.Hashing.mix64 (Sketchmodel.Public_coins.seed coins + i) mod 3 = 0)
           in
           Core.Yao.dominates report));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"packed output always a verified RS graph" ~count:20
         QCheck.(pair (int_range 10 40) (int_range 0 1000))
         (fun (nn, seed) ->
           let r = max 1 (nn / 10) in
           match Rsgraph.Packed.pack (Stdx.Prng.create seed) ~big_n:nn ~r ~tries:200 with
           | None -> true
           | Some rs -> Rsgraph.Verify.is_valid_rs rs));
  ]

let () =
  Alcotest.run "yao_estimate_packed"
    [
      ( "yao",
        [
          Alcotest.test_case "max dominates average" `Quick test_yao_max_dominates_average;
          Alcotest.test_case "spread" `Quick test_yao_spread;
          Alcotest.test_case "on D_MM" `Quick test_yao_on_dmm;
          Alcotest.test_case "guards" `Quick test_yao_guards;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "uniform entropy" `Quick test_entropy_plugin_exact_on_uniform;
          Alcotest.test_case "constant" `Quick test_entropy_plugin_constant;
          Alcotest.test_case "identical / independent MI" `Quick
            test_mi_plugin_identical_and_independent;
          Alcotest.test_case "xor CMI" `Quick test_cmi_plugin_xor;
          Alcotest.test_case "sample frequencies" `Quick test_sample_space_frequencies;
          Alcotest.test_case "converges to exact" `Quick test_estimator_converges_to_exact;
        ] );
      ( "packed",
        [
          Alcotest.test_case "valid RS" `Quick test_packed_is_valid_rs;
          Alcotest.test_case "guards" `Quick test_packed_guards;
          Alcotest.test_case "monotone in tries" `Quick test_packed_more_tries_no_worse;
        ] );
      ("properties", qcheck_tests);
    ]

#!/usr/bin/env bash
# End-to-end smoke of the multi-pass protocol wing: both frontier
# experiments at smoke sizes through the JSON renderer, the streams
# bench (BENCH_streams.json must parse and carry both families), and
# the new simulate protocols served through sketchd and sketchproxy
# with byte-identical cache-hit replay.
#
# Run from the repo root after a build (`make streams-smoke` does both).
set -euo pipefail

SKETCHLB=${SKETCHLB:-./_build/default/bin/sketchlb.exe}
SKETCHD=${SKETCHD:-./_build/default/bin/sketchd.exe}
SKETCHPROXY=${SKETCHPROXY:-./_build/default/bin/sketchproxy.exe}
SKETCHCTL=${SKETCHCTL:-./_build/default/bin/sketchctl.exe}
BENCH=${BENCH:-./_build/default/bench/main.exe}
JSONCHECK=${JSONCHECK:-./_build/default/bin/jsoncheck.exe}

tmp=$(mktemp -d)
daemon_pid=
proxy_pid=

cleanup() {
  for pid in "$proxy_pid" "$daemon_pid"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "streams-smoke: FAIL: $*" >&2; exit 1; }

wait_port() { # file pid what
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    kill -0 "$2" 2>/dev/null || fail "$3 died on startup"
    sleep 0.1
  done
  fail "$3 never wrote its port file"
}

# 1. Both frontier experiments at smoke sizes, through the JSON-lines
#    renderer, validated by the bundled parser.
"$SKETCHLB" round-frontier -m 5 --rounds 1,2,4 --seed 53 --format json --out - \
  | "$JSONCHECK" || fail "round-frontier JSON did not validate"
"$SKETCHLB" stream-matching -n 24 --eps 50,25 --seed 59 --format json --out - \
  | "$JSONCHECK" || fail "stream-matching JSON did not validate"
echo "streams-smoke: experiments OK"

# 2. The streams bench: BENCH_streams.json must parse and carry a
#    per-round rounds family and a per-pass passes family.
"$BENCH" streams --fast >"$tmp/bench.out" || fail "bench streams failed: $(cat "$tmp/bench.out")"
[ -s BENCH_streams.json ] || fail "bench streams wrote no BENCH_streams.json"
"$JSONCHECK" BENCH_streams.json || fail "BENCH_streams.json is not valid JSON-lines"
grep -q '"bench":"rounds"' BENCH_streams.json || fail "no rounds family in BENCH_streams.json"
grep -q '"bench":"passes"' BENCH_streams.json || fail "no passes family in BENCH_streams.json"
grep -q '"round_max":\[' BENCH_streams.json || fail "rounds family lacks per-round curves"
grep -q '"pass_memory_bits":\[' BENCH_streams.json || fail "passes family lacks per-pass memory"
echo "streams-smoke: bench OK"

# 3. The multipass protocols through sketchd: run each once, replay it,
#    require byte-identical responses, then confirm the cache counted
#    one miss + one hit per protocol.
"$SKETCHD" --port-file "$tmp/port" -q >"$tmp/daemon.out" &
daemon_pid=$!
wait_port "$tmp/port" "$daemon_pid" "daemon"
port=$(cat "$tmp/port")
echo "streams-smoke: daemon pid $daemon_pid on port $port"

protocols="prefix-mis-r4 luby-mis-degree stream-matching"
count=0
for proto in $protocols; do
  "$SKETCHCTL" simulate "$proto" --graph gnp -n 32 --prob 0.2 --seed 9 -p "$port" >"$tmp/$proto.1.json"
  grep -q '"ok":true' "$tmp/$proto.1.json" || fail "$proto reported an error: $(cat "$tmp/$proto.1.json")"
  "$SKETCHCTL" simulate "$proto" --graph gnp -n 32 --prob 0.2 --seed 9 -p "$port" >"$tmp/$proto.2.json"
  diff "$tmp/$proto.1.json" "$tmp/$proto.2.json" >/dev/null \
    || fail "$proto cached replay not byte-identical"
  count=$((count + 1))
done
grep -q '"round_max":\[' "$tmp/prefix-mis-r4.1.json" || fail "prefix-mis-r4 lacks per-round curve"
grep -q '"pass_memory_bits":\[' "$tmp/stream-matching.1.json" \
  || fail "stream-matching lacks per-pass memory"
"$SKETCHCTL" stats -p "$port" >"$tmp/stats.json"
grep -q "\"hits\":$count" "$tmp/stats.json" || fail "expected $count cache hits: $(cat "$tmp/stats.json")"
grep -q "\"misses\":$count" "$tmp/stats.json" || fail "expected $count cache misses"

# 4. An unknown protocol is a 400 that lists the valid ids, including
#    the multipass wing.
set +e
"$SKETCHCTL" simulate no-such-protocol -n 8 -p "$port" >"$tmp/unknown.json" 2>&1
set -e
grep -q '"code":400' "$tmp/unknown.json" || fail "unknown protocol is not a 400: $(cat "$tmp/unknown.json")"
grep -q 'stream-matching' "$tmp/unknown.json" || fail "400 message does not list the valid protocols"

# 5. The same protocol through sketchproxy: routed to the backend, the
#    second call is a relayed cache hit, byte-identical.
"$SKETCHPROXY" --backend "127.0.0.1:$port" --port-file "$tmp/proxy.port" 2>"$tmp/proxy.log" >/dev/null &
proxy_pid=$!
wait_port "$tmp/proxy.port" "$proxy_pid" "proxy"
pport=$(cat "$tmp/proxy.port")
"$SKETCHCTL" simulate luby-mis-random --graph gnp -n 32 --prob 0.2 --seed 9 -p "$pport" >"$tmp/p1.json"
grep -q '"ok":true' "$tmp/p1.json" || fail "simulate through proxy failed: $(cat "$tmp/p1.json")"
"$SKETCHCTL" simulate luby-mis-random --graph gnp -n 32 --prob 0.2 --seed 9 -p "$pport" >"$tmp/p2.json"
diff "$tmp/p1.json" "$tmp/p2.json" >/dev/null || fail "proxied cached replay not byte-identical"

# 6. Drain: proxy first, then the backend.
"$SKETCHCTL" shutdown -p "$pport" >/dev/null
for _ in $(seq 1 100); do
  kill -0 "$proxy_pid" 2>/dev/null || { proxy_pid=; break; }
  sleep 0.1
done
[ -z "$proxy_pid" ] || fail "proxy still running 10s after shutdown RPC"
"$SKETCHCTL" shutdown -p "$port" >/dev/null
for _ in $(seq 1 100); do
  kill -0 "$daemon_pid" 2>/dev/null || { daemon_pid=; break; }
  sleep 0.1
done
[ -z "$daemon_pid" ] || fail "daemon still running 10s after shutdown RPC"

echo "streams-smoke: OK (experiments, bench, byte-identical replay through sketchd and sketchproxy)"

#!/usr/bin/env bash
# Allocation regression gate for the scratch-arena work (PERFORMANCE.md).
#
# Regenerates BENCH_tables.json at --fast with jobs=1 (the GC counters
# are domain-local, so only jobs=1 measures the whole table), validates
# the schema with `jsoncheck --tables`, and fails if any gated
# experiment's body allocation exceeds its committed ceiling.
#
# The ceilings are deliberately loose against the measured numbers
# (bcc ~4 MB, info-accounting ~126 MB, connectivity ~73 MB at --fast on
# the reference container) but far below the pre-arena baselines
# (1528 / 578 / 419 MB) — they catch a lost optimisation, not runtime
# noise. Raise a ceiling only with a PERFORMANCE.md update explaining
# the new cost.
#
# Run from the repo root after a build (`make alloc-smoke` does both).
set -euo pipefail

BENCH=${BENCH:-./_build/default/bench/main.exe}
JSONCHECK=${JSONCHECK:-./_build/default/bin/jsoncheck.exe}

fail() { echo "alloc-smoke: FAIL: $*" >&2; exit 1; }

"$BENCH" tables --fast -j 1 > /dev/null || fail "bench tables run failed"
[ -s BENCH_tables.json ] || fail "BENCH_tables.json missing or empty"
"$JSONCHECK" --tables BENCH_tables.json || fail "BENCH_tables.json failed schema validation"

# id -> ceiling in bytes (committed; see header comment before raising).
gate() { # id ceiling_bytes
  local id="$1" ceiling="$2"
  # Each line is one flat JSON object; alloc_bytes is a bare integer.
  local line bytes
  line=$(grep -F "\"id\":\"$id\"" BENCH_tables.json) || fail "no line for id $id"
  bytes=$(printf '%s' "$line" | sed -n 's/.*"alloc_bytes":\([0-9]*\).*/\1/p')
  [ -n "$bytes" ] || fail "no alloc_bytes field on the $id line"
  if [ "$bytes" -gt "$ceiling" ]; then
    fail "$id allocated $bytes bytes at --fast (ceiling $ceiling)"
  fi
  echo "alloc-smoke: $id $bytes bytes <= $ceiling ok"
}

gate bcc              67108864    # 64 MB  (measured ~4 MB;   baseline 1528 MB)
gate info-accounting  202375168   # 193 MB (measured ~126 MB; baseline 578 MB)
gate connectivity     146800640   # 140 MB (measured ~73 MB;  baseline 419 MB)

echo "alloc-smoke: OK"

#!/usr/bin/env bash
# End-to-end smoke of the tracing layer: run a smoke-sized experiment with
# --trace, require the table output to be byte-identical to an untraced
# run (tracing must be inert), and require the trace file to be valid
# JSON containing the expected spans.
#
# Run from the repo root after a build (`make trace-smoke` does both).
set -euo pipefail

SKETCHLB=${SKETCHLB:-./_build/default/bin/sketchlb.exe}
JSONCHECK=${JSONCHECK:-./_build/default/bin/jsoncheck.exe}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() { echo "trace-smoke: FAIL: $*" >&2; exit 1; }

"$SKETCHLB" run claim31 --smoke --jobs 2 --trace "$tmp/trace.json" >"$tmp/traced.txt"
"$SKETCHLB" run claim31 --smoke --jobs 2 >"$tmp/plain.txt"

diff "$tmp/plain.txt" "$tmp/traced.txt" >/dev/null \
  || fail "--trace changed the table output"

[ -s "$tmp/trace.json" ] || fail "trace file is empty"

# The exporter writes the whole trace as one JSON line, so the JSON-lines
# validator doubles as a whole-file validator here.
"$JSONCHECK" "$tmp/trace.json" || fail "trace file is not valid JSON"

# The spans the claim31 pipeline must have emitted: the experiment span,
# the graph-build phases, and the referee verification.
for span in '"exp.claim31"' '"graph.freeze"' '"claims.check"' '"parallel.chunk"'; do
  grep -q "$span" "$tmp/trace.json" || fail "trace has no $span span"
done
grep -q '"traceEvents"' "$tmp/trace.json" || fail "not a Chrome trace_event file"

events=$(grep -o '"ph"' "$tmp/trace.json" | wc -l)
echo "trace-smoke: OK ($events events, output byte-identical with tracing on)"

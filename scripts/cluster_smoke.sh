#!/usr/bin/env bash
# End-to-end smoke of the sketchproxy routing tier: boot one proxy in
# front of two sketchd backends, simulate through the proxy (twice —
# the replay must be byte-identical), kill -9 the backend that served
# it, re-run and require the failover response to be byte-for-byte the
# same, check the `cluster` RPC reports the death, then drain everything
# cleanly.
#
# Run from the repo root after a build (`make cluster-smoke` does both).
set -euo pipefail

SKETCHD=${SKETCHD:-./_build/default/bin/sketchd.exe}
SKETCHPROXY=${SKETCHPROXY:-./_build/default/bin/sketchproxy.exe}
SKETCHCTL=${SKETCHCTL:-./_build/default/bin/sketchctl.exe}

tmp=$(mktemp -d)
b1_pid=
b2_pid=
proxy_pid=

cleanup() {
  for pid in "$proxy_pid" "$b1_pid" "$b2_pid"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

wait_port() { # file pid what
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    kill -0 "$2" 2>/dev/null || fail "$3 died on startup"
    sleep 0.1
  done
  fail "$3 never wrote its port file"
}

# Backends log one line per request on stderr; the logs tell us which
# backend actually served the simulate, so we can kill the right one.
"$SKETCHD" --port-file "$tmp/b1.port" 2>"$tmp/b1.log" >/dev/null &
b1_pid=$!
"$SKETCHD" --port-file "$tmp/b2.port" 2>"$tmp/b2.log" >/dev/null &
b2_pid=$!
wait_port "$tmp/b1.port" "$b1_pid" "backend 1"
wait_port "$tmp/b2.port" "$b2_pid" "backend 2"
b1_port=$(cat "$tmp/b1.port")
b2_port=$(cat "$tmp/b2.port")

"$SKETCHPROXY" --backend "127.0.0.1:$b1_port" --backend "127.0.0.1:$b2_port" \
  --port-file "$tmp/proxy.port" 2>"$tmp/proxy.log" >/dev/null &
proxy_pid=$!
wait_port "$tmp/proxy.port" "$proxy_pid" "proxy"
pport=$(cat "$tmp/proxy.port")
echo "cluster-smoke: proxy pid $proxy_pid on port $pport (backends $b1_port, $b2_port)"

# 1. The proxy answers ping itself and says so.
"$SKETCHCTL" ping -p "$pport" >"$tmp/ping.json"
grep -q '"role":"proxy"' "$tmp/ping.json" || fail "ping through proxy lacks role=proxy"

# 2. Simulate through the proxy, twice: the replay is a backend cache hit
#    relayed by the proxy and must be byte-identical.
sim() { "$SKETCHCTL" simulate two-round-mm --graph gnp -n 48 --prob 0.2 --seed 3 -p "$pport"; }
sim >"$tmp/s1.json"
grep -q '"ok":true' "$tmp/s1.json" || fail "simulate reported an error: $(cat "$tmp/s1.json")"
sim >"$tmp/s2.json"
diff "$tmp/s1.json" "$tmp/s2.json" >/dev/null || fail "cached replay differs"

# 3. Kill -9 the backend that served it; consistent hashing means the
#    other one never saw a simulate.
if grep -q "op=simulate" "$tmp/b1.log"; then
  victim_pid=$b1_pid; victim=b1; survivor_port=$b2_port; b1_pid=
else
  grep -q "op=simulate" "$tmp/b2.log" || fail "neither backend logged the simulate"
  victim_pid=$b2_pid; victim=b2; survivor_port=$b1_port; b2_pid=
fi
kill -9 "$victim_pid"
echo "cluster-smoke: killed $victim (pid $victim_pid)"

# 4. Failover: the surviving backend recomputes the byte-identical
#    response — the determinism contract, end to end.
sim >"$tmp/s3.json"
diff "$tmp/s1.json" "$tmp/s3.json" >/dev/null || fail "failover response not byte-identical"

# 5. The cluster RPC reports the death.
"$SKETCHCTL" cluster -p "$pport" >"$tmp/cluster.json"
grep -q '"healthy":false' "$tmp/cluster.json" || fail "cluster RPC does not report the dead backend"
grep -q '"healthy":true' "$tmp/cluster.json" || fail "cluster RPC lost the surviving backend"

# 6. Aggregated stats still answer with one backend down.
"$SKETCHCTL" stats -p "$pport" >"$tmp/stats.json"
grep -q '"ok":true' "$tmp/stats.json" || fail "stats through proxy failed"
grep -q '"cluster":{"backends":2,"healthy":1}' "$tmp/stats.json" \
  || fail "aggregated stats disagree about cluster health: $(cat "$tmp/stats.json")"

# 7. Graceful drain: proxy first, then the surviving backend.
"$SKETCHCTL" shutdown -p "$pport" >"$tmp/bye.json"
grep -q '"ok":true' "$tmp/bye.json" || fail "proxy shutdown not acked"
for _ in $(seq 1 100); do
  kill -0 "$proxy_pid" 2>/dev/null || { proxy_pid=; break; }
  sleep 0.1
done
[ -z "$proxy_pid" ] || fail "proxy still running 10s after shutdown RPC"

"$SKETCHCTL" shutdown -p "$survivor_port" >/dev/null
survivor_pid=$b1_pid$b2_pid # whichever was not killed
for _ in $(seq 1 100); do
  kill -0 "$survivor_pid" 2>/dev/null || { survivor_pid=; break; }
  sleep 0.1
done
[ -z "$survivor_pid" ] || fail "surviving backend still running 10s after shutdown RPC"
b1_pid=
b2_pid=

echo "cluster-smoke: OK (byte-identical failover, health reported, clean drain)"

#!/usr/bin/env bash
# End-to-end smoke of the sketchd service: start the daemon on a
# kernel-chosen port, fetch the catalogue, run the same experiment twice
# (second response must be byte-identical and served from the cache),
# check the stats counters say exactly that, then shut down cleanly and
# require the process to actually exit.
#
# Then the event engine at scale: `bench serve --connections 5000` holds
# five thousand idle connections on the poll loop (ulimit raised first,
# clamped to the hard limit) while the latency mixes run, sheds the
# over-cap extras with 503 frames, and the resulting BENCH_serve.json
# must parse.
#
# Run from the repo root after a build (`make serve-smoke` does both).
set -euo pipefail

SKETCHD=${SKETCHD:-./_build/default/bin/sketchd.exe}
SKETCHCTL=${SKETCHCTL:-./_build/default/bin/sketchctl.exe}
BENCH=${BENCH:-./_build/default/bench/main.exe}
JSONCHECK=${JSONCHECK:-./_build/default/bin/jsoncheck.exe}

tmp=$(mktemp -d)
daemon_pid=

cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -9 "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

"$SKETCHD" --port-file "$tmp/port" -q >"$tmp/daemon.out" &
daemon_pid=$!

for _ in $(seq 1 100); do
  [ -s "$tmp/port" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on startup: $(cat "$tmp/daemon.out")"
  sleep 0.1
done
[ -s "$tmp/port" ] || fail "daemon never wrote its port file"
port=$(cat "$tmp/port")
echo "serve-smoke: daemon pid $daemon_pid on port $port"

# Catalogue: must be ok and list the experiment we are about to run.
"$SKETCHCTL" list -p "$port" >"$tmp/list.json"
grep -q '"claim31"' "$tmp/list.json" || fail "catalogue does not list claim31"

# The determinism-and-cache pin: two identical runs, byte-identical
# payloads, the second one a cache hit.
"$SKETCHCTL" run claim31 --smoke --seed 1 -p "$port" >"$tmp/r1.json"
"$SKETCHCTL" run claim31 --smoke --seed 1 -p "$port" >"$tmp/r2.json"
diff "$tmp/r1.json" "$tmp/r2.json" >/dev/null || fail "cached response differs from computed one"
grep -q '"ok":true' "$tmp/r1.json" || fail "run reported an error: $(cat "$tmp/r1.json")"

"$SKETCHCTL" stats -p "$port" >"$tmp/stats.json"
grep -q '"hits":1' "$tmp/stats.json" || fail "expected exactly one cache hit: $(cat "$tmp/stats.json")"
grep -q '"misses":1' "$tmp/stats.json" || fail "expected exactly one cache miss"
grep -q '"version":' "$tmp/stats.json" || fail "stats does not report a version"
grep -q '"connections":{"open":' "$tmp/stats.json" || fail "stats does not report connections"

# The cache RPC: the run above left exactly one entry; list it, wipe it
# by prefix, and see the invalidation counted (not as an eviction).
"$SKETCHCTL" cache stats -p "$port" >"$tmp/cstats.json"
grep -q '"entries":1' "$tmp/cstats.json" || fail "cache stats should show one entry: $(cat "$tmp/cstats.json")"
"$SKETCHCTL" cache keys -p "$port" >"$tmp/ckeys.json"
grep -q '"matched":1' "$tmp/ckeys.json" || fail "cache keys should match the one entry: $(cat "$tmp/ckeys.json")"
"$SKETCHCTL" cache invalidate --prefix "" -p "$port" >"$tmp/cinv.json"
grep -q '"invalidated":1' "$tmp/cinv.json" || fail "invalidate should remove the one entry: $(cat "$tmp/cinv.json")"
"$SKETCHCTL" cache stats -p "$port" >"$tmp/cstats2.json"
grep -q '"entries":0' "$tmp/cstats2.json" || fail "cache should be empty after invalidate"
grep -q '"invalidations":1' "$tmp/cstats2.json" || fail "invalidation not counted"
grep -q '"evictions":0' "$tmp/cstats2.json" || fail "invalidation must not count as eviction"

# Graceful shutdown: the RPC is acked and the process exits by itself.
"$SKETCHCTL" shutdown -p "$port" >"$tmp/bye.json"
grep -q '"ok":true' "$tmp/bye.json" || fail "shutdown not acked"
for _ in $(seq 1 100); do
  kill -0 "$daemon_pid" 2>/dev/null || { daemon_pid=; break; }
  sleep 0.1
done
[ -z "$daemon_pid" ] || fail "daemon still running 10s after shutdown RPC"

# The poll engine at scale: 5000 idle connections held for the whole
# bench (≈ 10k descriptors — client and in-process daemon share the
# process), the over-cap extras shed with 503 conn-limit frames, and a
# sampled herd still answering at the end. Raise the fd soft limit first,
# clamped to the hard limit; skip only if the hard limit cannot fit.
conns=5000
hard=$(ulimit -Hn)
want=12000
if [ "$hard" != "unlimited" ] && [ "$want" -gt "$hard" ]; then want=$hard; fi
ulimit -n "$want" 2>/dev/null || true
soft=$(ulimit -n)
if [ "$soft" != "unlimited" ] && [ "$soft" -lt 10500 ]; then
  conns=$(( (soft - 500) / 2 ))
  echo "serve-smoke: fd limit $soft too small for 5000 connections; scaling to $conns"
fi
"$BENCH" serve --fast --connections "$conns" >"$tmp/bench_serve.out"
grep -q "target=$conns" "$tmp/bench_serve.out" || fail "connection herd did not run: $(cat "$tmp/bench_serve.out")"
grep -q 'shed=8 (saw 8/8 conn-limit frames)' "$tmp/bench_serve.out" \
  || fail "over-cap connects were not shed with 503 frames: $(cat "$tmp/bench_serve.out")"
[ -s BENCH_serve.json ] || fail "bench serve wrote no BENCH_serve.json"
"$JSONCHECK" BENCH_serve.json || fail "BENCH_serve.json is not valid JSON-lines"
grep -q '"mix":"connections"' BENCH_serve.json || fail "BENCH_serve.json has no connections line"

echo "serve-smoke: OK (byte-identical cached replay, cache RPC, clean shutdown, ${conns}-connection herd)"

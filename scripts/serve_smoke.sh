#!/usr/bin/env bash
# End-to-end smoke of the sketchd service: start the daemon on a
# kernel-chosen port, fetch the catalogue, run the same experiment twice
# (second response must be byte-identical and served from the cache),
# check the stats counters say exactly that, then shut down cleanly and
# require the process to actually exit.
#
# Run from the repo root after a build (`make serve-smoke` does both).
set -euo pipefail

SKETCHD=${SKETCHD:-./_build/default/bin/sketchd.exe}
SKETCHCTL=${SKETCHCTL:-./_build/default/bin/sketchctl.exe}

tmp=$(mktemp -d)
daemon_pid=

cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -9 "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

"$SKETCHD" --port-file "$tmp/port" -q >"$tmp/daemon.out" &
daemon_pid=$!

for _ in $(seq 1 100); do
  [ -s "$tmp/port" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on startup: $(cat "$tmp/daemon.out")"
  sleep 0.1
done
[ -s "$tmp/port" ] || fail "daemon never wrote its port file"
port=$(cat "$tmp/port")
echo "serve-smoke: daemon pid $daemon_pid on port $port"

# Catalogue: must be ok and list the experiment we are about to run.
"$SKETCHCTL" list -p "$port" >"$tmp/list.json"
grep -q '"claim31"' "$tmp/list.json" || fail "catalogue does not list claim31"

# The determinism-and-cache pin: two identical runs, byte-identical
# payloads, the second one a cache hit.
"$SKETCHCTL" run claim31 --smoke --seed 1 -p "$port" >"$tmp/r1.json"
"$SKETCHCTL" run claim31 --smoke --seed 1 -p "$port" >"$tmp/r2.json"
diff "$tmp/r1.json" "$tmp/r2.json" >/dev/null || fail "cached response differs from computed one"
grep -q '"ok":true' "$tmp/r1.json" || fail "run reported an error: $(cat "$tmp/r1.json")"

"$SKETCHCTL" stats -p "$port" >"$tmp/stats.json"
grep -q '"hits":1' "$tmp/stats.json" || fail "expected exactly one cache hit: $(cat "$tmp/stats.json")"
grep -q '"misses":1' "$tmp/stats.json" || fail "expected exactly one cache miss"
grep -q '"version":' "$tmp/stats.json" || fail "stats does not report a version"

# Graceful shutdown: the RPC is acked and the process exits by itself.
"$SKETCHCTL" shutdown -p "$port" >"$tmp/bye.json"
grep -q '"ok":true' "$tmp/bye.json" || fail "shutdown not acked"
for _ in $(seq 1 100); do
  kill -0 "$daemon_pid" 2>/dev/null || { daemon_pid=; break; }
  sleep 0.1
done
[ -z "$daemon_pid" ] || fail "daemon still running 10s after shutdown RPC"

echo "serve-smoke: OK (byte-identical cached replay, clean shutdown)"
